#ifndef QMQO_WORKLOADS_GRAPH_H_
#define QMQO_WORKLOADS_GRAPH_H_

/// \file graph.h
/// Simple undirected weighted graphs for the combinatorial workloads
/// (max-clique, max-cut, graph coloring), plus seeded instance generators
/// that *plant* a known optimum by construction — so every workload solve
/// can be validated end-to-end against provable ground truth instead of a
/// hoped-for heuristic answer:
///
///  * `PlantedCliqueGraph` plants a k-clique and caps every non-planted
///    vertex's degree at k-1, so no clique containing an outside vertex
///    can reach size k+1 — the planted clique is provably maximum.
///  * `PlantedCutGraph` builds a bipartite graph (every edge crosses the
///    planted partition), so the planted cut provably equals the total
///    edge weight — the maximum any cut can reach.
///  * `KColorableGraph` builds a k-partite graph (edges only between
///    groups) and embeds one k-clique across the groups, so the chromatic
///    number is provably exactly k and the planted group assignment is a
///    proper k-coloring.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace qmqo {
namespace workloads {

/// One undirected edge (canonical u < v) with a positive weight.
struct Edge {
  int u = 0;
  int v = 0;
  double weight = 1.0;
};

/// A simple undirected weighted graph: no self-loops, no duplicate edges,
/// edges stored canonically (u < v) and sorted lexicographically. Build
/// with `AddEdge`, then share const references freely.
class Graph {
 public:
  explicit Graph(int num_nodes);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Adds an undirected edge; rejects self-loops, out-of-range endpoints,
  /// duplicate edges, and non-positive or non-finite weights.
  Status AddEdge(int u, int v, double weight = 1.0);

  /// True when the canonical edge (min(u,v), max(u,v)) exists.
  bool HasEdge(int u, int v) const;

  /// Edges in canonical sorted order.
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbor ids of `v`, ascending. Built lazily; call once
  /// single-threaded before sharing across threads.
  const std::vector<int>& neighbors(int v) const;

  /// Degree of `v`.
  int degree(int v) const {
    return static_cast<int>(neighbors(v).size());
  }

  /// Sum of all edge weights.
  double total_weight() const;

  /// One-line summary, e.g. "Graph(24 nodes, 61 edges)".
  std::string Summary() const;

 private:
  void EnsureAdjacency() const;

  int num_nodes_;
  std::vector<Edge> edges_;
  mutable bool adjacency_built_ = false;
  mutable std::vector<std::vector<int>> adjacency_;
};

/// A planted-clique instance: `graph` contains a clique over `clique`
/// (size k), and every vertex outside it has degree <= k-1, so the maximum
/// clique size is exactly k.
struct PlantedCliqueInstance {
  Graph graph{0};
  std::vector<int> clique;  ///< planted members, ascending
};

/// Generates a planted-clique graph: `clique_size` random vertices form a
/// clique; background edges appear with probability `edge_prob` but are
/// skipped whenever they would lift a non-planted endpoint's degree to
/// `clique_size` (which could create a larger clique through it). Requires
/// 2 <= clique_size <= num_nodes and edge_prob in [0, 1].
Result<PlantedCliqueInstance> PlantedCliqueGraph(int num_nodes,
                                                 int clique_size,
                                                 double edge_prob,
                                                 uint64_t seed);

/// A planted-cut instance: `graph` is bipartite over `side` (0/1 per
/// node), every edge crosses, so the maximum cut weight is exactly
/// `graph.total_weight()`, attained by the planted sides.
struct PlantedCutInstance {
  Graph graph{0};
  std::vector<int> side;  ///< planted partition side of each node (0/1)
};

/// Generates a bipartite planted-cut graph: nodes are split into two sides
/// (each node uniformly), and cross edges appear with probability
/// `edge_prob` carrying weights uniform in [1, max_weight]. Requires
/// num_nodes >= 2, edge_prob in [0, 1], max_weight >= 1.
Result<PlantedCutInstance> PlantedCutGraph(int num_nodes, double edge_prob,
                                           double max_weight, uint64_t seed);

/// A planted-coloring instance: `graph` is `num_colors`-partite over
/// `color` and contains a clique spanning all `num_colors` groups, so the
/// chromatic number is exactly `num_colors` and `color` is a proper
/// coloring.
struct KColorableInstance {
  Graph graph{0};
  int num_colors = 0;
  std::vector<int> color;  ///< planted proper coloring of each node
};

/// Generates a k-partite graph: each node joins one of `num_colors` groups
/// round-robin (so every group is non-empty), cross-group edges appear
/// with probability `edge_prob`, and one vertex per group is wired into a
/// k-clique (forcing the chromatic number up to exactly k). Requires
/// 2 <= num_colors <= num_nodes and edge_prob in [0, 1].
Result<KColorableInstance> KColorableGraph(int num_nodes, int num_colors,
                                           double edge_prob, uint64_t seed);

}  // namespace workloads
}  // namespace qmqo

#endif  // QMQO_WORKLOADS_GRAPH_H_
