#ifndef QMQO_WORKLOADS_MAX_CLIQUE_H_
#define QMQO_WORKLOADS_MAX_CLIQUE_H_

/// \file max_clique.h
/// Maximum clique as a penalty QUBO (the Chapuis et al. formulation).
///
/// One binary variable per vertex (x_v = 1 <=> v in the clique):
///
///   minimize  -A * sum_v x_v  +  B * sum_{(u,v) NOT in E, u<v} x_u x_v
///
/// With B > A (default A=1, B=2) selecting any non-adjacent pair costs
/// more than the reward of one vertex, so every ground state is a maximum
/// clique with energy exactly -A * omega(G). Decoding repairs infeasible
/// sets by deterministically dropping the most-conflicted vertex until the
/// selection is a clique, so any sampler read yields a valid clique.

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/workload.h"

namespace qmqo {
namespace workloads {

/// Penalty weights of the clique QUBO. `conflict_penalty` must exceed
/// `vertex_reward` or ground states may include non-edges.
struct MaxCliqueOptions {
  double vertex_reward = 1.0;     ///< A
  double conflict_penalty = 2.0;  ///< B
};

class MaxCliqueWorkload : public Workload {
 public:
  /// Formulates `graph`; `known_clique_size` is the generator-planted
  /// maximum clique size (the provable optimum). Fails when the options
  /// are degenerate (non-positive A, B <= A).
  static Result<std::shared_ptr<MaxCliqueWorkload>> Create(
      Graph graph, int known_clique_size,
      const MaxCliqueOptions& options = MaxCliqueOptions());

  /// Convenience: generates a planted-clique instance (see
  /// `PlantedCliqueGraph`) and formulates it.
  static Result<std::shared_ptr<MaxCliqueWorkload>> MakePlanted(
      int num_nodes, int clique_size, double edge_prob, uint64_t seed,
      const MaxCliqueOptions& options = MaxCliqueOptions());

  WorkloadKind kind() const override { return WorkloadKind::kMaxClique; }
  std::string name() const override;
  const Graph& graph() const override { return graph_; }
  const qubo::QuboProblem& qubo() const override { return qubo_; }
  double energy_offset() const override { return 0.0; }
  double known_optimum() const override {
    return static_cast<double>(known_clique_size_);
  }
  ObjectiveSense sense() const override { return ObjectiveSense::kMaximize; }
  WorkloadSolution Decode(const std::vector<uint8_t>& x) const override;
  Status ValidateFeasible(const WorkloadSolution& solution) const override;

  const MaxCliqueOptions& options() const { return options_; }

 private:
  MaxCliqueWorkload(Graph graph, int known_clique_size,
                    const MaxCliqueOptions& options);

  Graph graph_;
  int known_clique_size_;
  MaxCliqueOptions options_;
  qubo::QuboProblem qubo_;
};

}  // namespace workloads
}  // namespace qmqo

#endif  // QMQO_WORKLOADS_MAX_CLIQUE_H_
