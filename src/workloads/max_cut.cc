#include "workloads/max_cut.h"

#include <cmath>
#include <utility>

#include "util/string_util.h"

namespace qmqo {
namespace workloads {

MaxCutWorkload::MaxCutWorkload(Graph graph, double known_cut_weight)
    : graph_(std::move(graph)),
      known_cut_weight_(known_cut_weight),
      qubo_(graph_.num_nodes()) {
  for (const Edge& e : graph_.edges()) {
    qubo_.AddLinear(e.u, -e.weight);
    qubo_.AddLinear(e.v, -e.weight);
    qubo_.AddQuadratic(e.u, e.v, 2.0 * e.weight);
  }
  qubo_.Finalize();
}

Result<std::shared_ptr<MaxCutWorkload>> MaxCutWorkload::Create(
    Graph graph, double known_cut_weight) {
  if (graph.num_nodes() < 2) {
    return Status::InvalidArgument("max-cut graph needs >= 2 nodes");
  }
  if (!std::isfinite(known_cut_weight) || known_cut_weight < 0.0) {
    return Status::InvalidArgument(
        "known cut weight must be finite and non-negative");
  }
  return std::shared_ptr<MaxCutWorkload>(
      new MaxCutWorkload(std::move(graph), known_cut_weight));
}

Result<std::shared_ptr<MaxCutWorkload>> MaxCutWorkload::MakePlanted(
    int num_nodes, double edge_prob, double max_weight, uint64_t seed) {
  Result<PlantedCutInstance> instance =
      PlantedCutGraph(num_nodes, edge_prob, max_weight, seed);
  QMQO_RETURN_IF_ERROR(instance.status());
  const double total = instance->graph.total_weight();
  return Create(std::move(instance->graph), total);
}

std::string MaxCutWorkload::name() const {
  return StrFormat("max_cut(%dn/%de, planted %g)", graph_.num_nodes(),
                   graph_.num_edges(), known_cut_weight_);
}

double MaxCutWorkload::CutWeight(const std::vector<int>& side) const {
  double cut = 0.0;
  for (const Edge& e : graph_.edges()) {
    if (side[static_cast<size_t>(e.u)] != side[static_cast<size_t>(e.v)]) {
      cut += e.weight;
    }
  }
  return cut;
}

WorkloadSolution MaxCutWorkload::Decode(const std::vector<uint8_t>& x) const {
  const int n = graph_.num_nodes();
  WorkloadSolution solution;
  solution.labels.resize(static_cast<size_t>(n), 0);
  for (int v = 0; v < n && v < static_cast<int>(x.size()); ++v) {
    solution.labels[static_cast<size_t>(v)] =
        x[static_cast<size_t>(v)] ? 1 : 0;
  }
  solution.objective = CutWeight(solution.labels);
  solution.feasible = true;  // every bipartition is a cut
  return solution;
}

Status MaxCutWorkload::ValidateFeasible(
    const WorkloadSolution& solution) const {
  const int n = graph_.num_nodes();
  if (static_cast<int>(solution.labels.size()) != n) {
    return Status::InvalidArgument(
        StrFormat("expected %d labels, got %zu", n, solution.labels.size()));
  }
  for (int v = 0; v < n; ++v) {
    const int label = solution.labels[static_cast<size_t>(v)];
    if (label != 0 && label != 1) {
      return Status::InvalidArgument(
          StrFormat("node %d has non-binary cut side %d", v, label));
    }
  }
  const double cut = CutWeight(solution.labels);
  if (std::fabs(cut - solution.objective) > 1e-9 * (1.0 + std::fabs(cut))) {
    return Status::InvalidArgument(
        StrFormat("objective %g does not match recomputed cut weight %g",
                  solution.objective, cut));
  }
  return Status::OK();
}

}  // namespace workloads
}  // namespace qmqo
