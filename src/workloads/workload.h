#ifndef QMQO_WORKLOADS_WORKLOAD_H_
#define QMQO_WORKLOADS_WORKLOAD_H_

/// \file workload.h
/// The common interface of the combinatorial QUBO workloads.
///
/// The paper's MQO workload proved the samplers/embedding/service stack
/// general; this layer opens it to the problem classes the related work
/// names directly — maximum clique on the annealer (Chapuis et al.) and
/// general combinatorial optimization via QUBO (Djidjev et al.). Every
/// workload follows one lifecycle:
///
///   generate (planted optimum) -> Formulate (a `qubo::QuboProblem`)
///     -> solve (any sampler / the resilient ladder / exact)
///     -> Decode (bitstring back to graph terms, with deterministic repair)
///     -> Validate (feasibility + optimality gap against the planted truth)
///
/// Conventions shared by every workload:
///  * The QUBO is a *minimization*; `energy_offset()` is the constant that
///    relates QUBO energy to the graph objective (see each subclass).
///  * `Decode` never fails: infeasible bitstrings are repaired
///    deterministically (pure function of the bits), so any sampler read
///    yields a valid graph answer — the same contract the MQO pipeline's
///    chain-break repair provides.
///  * Objectives are graph-native (clique size, cut weight, conflict
///    count); `ObjectiveSense` says which direction is better so gap
///    computation is uniform.

#include <memory>
#include <string>
#include <vector>

#include "qubo/qubo.h"
#include "util/status.h"
#include "workloads/graph.h"

namespace qmqo {
namespace workloads {

/// The supported workload families.
enum class WorkloadKind {
  kMaxClique = 0,
  kMaxCut = 1,
  kGraphColoring = 2,
};

/// Stable lower-case wire/display name ("max_clique", "max_cut",
/// "coloring").
const char* WorkloadKindName(WorkloadKind kind);

/// Parses a wire name into a kind; false on unknown names (`*out`
/// untouched).
bool ParseWorkloadKind(const std::string& name, WorkloadKind* out);

/// Whether larger or smaller objective values are better.
enum class ObjectiveSense {
  kMaximize,
  kMinimize,
};

/// A decoded (and repaired) solution in graph terms.
struct WorkloadSolution {
  /// Per-node label: clique membership (0/1), cut side (0/1), or color
  /// (0..k-1).
  std::vector<int> labels;
  /// Graph-native objective of the repaired labels: clique size, cut
  /// weight, or conflicting-edge count.
  double objective = 0.0;
  /// True when the labels satisfy the workload's hard constraints (clique
  /// is complete, coloring is proper; cuts are always feasible).
  bool feasible = false;
};

/// One formulated workload instance. Implementations are immutable after
/// construction and safe to share across threads (the QUBO is finalized by
/// the constructor).
class Workload {
 public:
  virtual ~Workload() = default;

  virtual WorkloadKind kind() const = 0;

  /// Display name, e.g. "max_clique(24n/61e, planted 6)".
  virtual std::string name() const = 0;

  virtual const Graph& graph() const = 0;

  /// The QUBO formulation (minimization). Finalized; one binary variable
  /// per node (k per node for coloring).
  virtual const qubo::QuboProblem& qubo() const = 0;

  /// Constant such that `qubo().Energy(x) + energy_offset()` is the
  /// workload's penalty-plus-objective energy in canonical form (0 for
  /// max-cut and clique; A*n for coloring).
  virtual double energy_offset() const = 0;

  /// The generator-planted optimal objective (provable by construction).
  virtual double known_optimum() const = 0;

  virtual ObjectiveSense sense() const = 0;

  /// Decodes a 0/1 assignment of `qubo().num_vars()` variables into graph
  /// terms, applying the workload's deterministic repair. Never fails.
  virtual WorkloadSolution Decode(const std::vector<uint8_t>& x) const = 0;

  /// Validates a solution's hard constraints against the graph;
  /// `InvalidArgument` with a reason when infeasible or malformed.
  virtual Status ValidateFeasible(const WorkloadSolution& solution) const = 0;

  /// Non-negative distance from the planted optimum in objective units
  /// (0 = optimum recovered), respecting `sense()`.
  double OptimalityGap(const WorkloadSolution& solution) const {
    const double gap = sense() == ObjectiveSense::kMaximize
                           ? known_optimum() - solution.objective
                           : solution.objective - known_optimum();
    return gap > 0.0 ? gap : 0.0;
  }
};

}  // namespace workloads
}  // namespace qmqo

#endif  // QMQO_WORKLOADS_WORKLOAD_H_
