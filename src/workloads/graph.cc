#include "workloads/graph.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/string_util.h"

namespace qmqo {
namespace workloads {

Graph::Graph(int num_nodes) : num_nodes_(num_nodes < 0 ? 0 : num_nodes) {}

Status Graph::AddEdge(int u, int v, double weight) {
  if (u < 0 || v < 0 || u >= num_nodes_ || v >= num_nodes_) {
    return Status::InvalidArgument(
        StrFormat("edge (%d, %d) out of range for %d nodes", u, v,
                  num_nodes_));
  }
  if (u == v) {
    return Status::InvalidArgument(StrFormat("self-loop on node %d", u));
  }
  if (!std::isfinite(weight) || weight <= 0.0) {
    return Status::InvalidArgument(
        StrFormat("edge (%d, %d) has non-positive or non-finite weight", u,
                  v));
  }
  if (HasEdge(u, v)) {
    return Status::InvalidArgument(
        StrFormat("duplicate edge (%d, %d)", std::min(u, v), std::max(u, v)));
  }
  Edge edge;
  edge.u = std::min(u, v);
  edge.v = std::max(u, v);
  edge.weight = weight;
  auto pos = std::lower_bound(edges_.begin(), edges_.end(), edge,
                              [](const Edge& a, const Edge& b) {
                                return a.u != b.u ? a.u < b.u : a.v < b.v;
                              });
  edges_.insert(pos, edge);
  adjacency_built_ = false;
  return Status::OK();
}

bool Graph::HasEdge(int u, int v) const {
  Edge probe;
  probe.u = std::min(u, v);
  probe.v = std::max(u, v);
  auto pos = std::lower_bound(edges_.begin(), edges_.end(), probe,
                              [](const Edge& a, const Edge& b) {
                                return a.u != b.u ? a.u < b.u : a.v < b.v;
                              });
  return pos != edges_.end() && pos->u == probe.u && pos->v == probe.v;
}

void Graph::EnsureAdjacency() const {
  if (adjacency_built_) return;
  adjacency_.assign(static_cast<size_t>(num_nodes_), {});
  for (const Edge& e : edges_) {
    adjacency_[static_cast<size_t>(e.u)].push_back(e.v);
    adjacency_[static_cast<size_t>(e.v)].push_back(e.u);
  }
  for (std::vector<int>& row : adjacency_) {
    std::sort(row.begin(), row.end());
  }
  adjacency_built_ = true;
}

const std::vector<int>& Graph::neighbors(int v) const {
  EnsureAdjacency();
  return adjacency_[static_cast<size_t>(v)];
}

double Graph::total_weight() const {
  double total = 0.0;
  for (const Edge& e : edges_) total += e.weight;
  return total;
}

std::string Graph::Summary() const {
  return StrFormat("Graph(%d nodes, %d edges)", num_nodes_, num_edges());
}

Result<PlantedCliqueInstance> PlantedCliqueGraph(int num_nodes,
                                                 int clique_size,
                                                 double edge_prob,
                                                 uint64_t seed) {
  if (num_nodes < 2) {
    return Status::InvalidArgument(
        StrFormat("planted clique needs >= 2 nodes, got %d", num_nodes));
  }
  if (clique_size < 2 || clique_size > num_nodes) {
    return Status::InvalidArgument(
        StrFormat("clique size %d out of range [2, %d]", clique_size,
                  num_nodes));
  }
  if (!std::isfinite(edge_prob) || edge_prob < 0.0 || edge_prob > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0, 1]");
  }
  Rng rng(seed);
  PlantedCliqueInstance instance;
  instance.graph = Graph(num_nodes);
  instance.clique = rng.SampleWithoutReplacement(num_nodes, clique_size);
  std::sort(instance.clique.begin(), instance.clique.end());
  std::vector<uint8_t> planted(static_cast<size_t>(num_nodes), 0);
  for (int v : instance.clique) planted[static_cast<size_t>(v)] = 1;
  for (size_t a = 0; a + 1 < instance.clique.size(); ++a) {
    for (size_t b = a + 1; b < instance.clique.size(); ++b) {
      Status added =
          instance.graph.AddEdge(instance.clique[a], instance.clique[b]);
      if (!added.ok()) return added;
    }
  }
  // Background edges, capped so every non-planted vertex keeps degree
  // <= clique_size - 1: a clique through an outside vertex v has at most
  // degree(v) + 1 members, so the planted clique stays uniquely maximal
  // in size. The degree draw order is fixed (lexicographic pairs) so the
  // instance is a pure function of the seed.
  std::vector<int> degree(static_cast<size_t>(num_nodes), 0);
  for (const Edge& e : instance.graph.edges()) {
    ++degree[static_cast<size_t>(e.u)];
    ++degree[static_cast<size_t>(e.v)];
  }
  const int cap = clique_size - 1;
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) {
      if (planted[static_cast<size_t>(u)] &&
          planted[static_cast<size_t>(v)]) {
        continue;  // already a clique edge
      }
      if (!rng.Bernoulli(edge_prob)) continue;
      if (!planted[static_cast<size_t>(u)] &&
          degree[static_cast<size_t>(u)] >= cap) {
        continue;
      }
      if (!planted[static_cast<size_t>(v)] &&
          degree[static_cast<size_t>(v)] >= cap) {
        continue;
      }
      Status added = instance.graph.AddEdge(u, v);
      if (!added.ok()) return added;
      ++degree[static_cast<size_t>(u)];
      ++degree[static_cast<size_t>(v)];
    }
  }
  return instance;
}

Result<PlantedCutInstance> PlantedCutGraph(int num_nodes, double edge_prob,
                                           double max_weight, uint64_t seed) {
  if (num_nodes < 2) {
    return Status::InvalidArgument(
        StrFormat("planted cut needs >= 2 nodes, got %d", num_nodes));
  }
  if (!std::isfinite(edge_prob) || edge_prob < 0.0 || edge_prob > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0, 1]");
  }
  if (!std::isfinite(max_weight) || max_weight < 1.0) {
    return Status::InvalidArgument("max edge weight must be >= 1");
  }
  Rng rng(seed);
  PlantedCutInstance instance;
  instance.graph = Graph(num_nodes);
  instance.side.resize(static_cast<size_t>(num_nodes));
  // Alternate the first two nodes deterministically so neither side is
  // ever empty, then assign the rest uniformly.
  for (int v = 0; v < num_nodes; ++v) {
    instance.side[static_cast<size_t>(v)] =
        v < 2 ? v : (rng.Bernoulli(0.5) ? 1 : 0);
  }
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) {
      if (instance.side[static_cast<size_t>(u)] ==
          instance.side[static_cast<size_t>(v)]) {
        continue;  // only cross edges: the planted cut captures everything
      }
      if (!rng.Bernoulli(edge_prob)) continue;
      Status added = instance.graph.AddEdge(
          u, v, max_weight > 1.0 ? rng.UniformReal(1.0, max_weight) : 1.0);
      if (!added.ok()) return added;
    }
  }
  return instance;
}

Result<KColorableInstance> KColorableGraph(int num_nodes, int num_colors,
                                           double edge_prob, uint64_t seed) {
  if (num_colors < 2 || num_colors > num_nodes) {
    return Status::InvalidArgument(
        StrFormat("color count %d out of range [2, %d]", num_colors,
                  num_nodes));
  }
  if (!std::isfinite(edge_prob) || edge_prob < 0.0 || edge_prob > 1.0) {
    return Status::InvalidArgument("edge probability must be in [0, 1]");
  }
  Rng rng(seed);
  KColorableInstance instance;
  instance.graph = Graph(num_nodes);
  instance.num_colors = num_colors;
  instance.color.resize(static_cast<size_t>(num_nodes));
  // Round-robin group assignment keeps every group non-empty; nodes
  // 0..k-1 (one per group) double as the embedded k-clique that pins the
  // chromatic number at exactly k.
  for (int v = 0; v < num_nodes; ++v) {
    instance.color[static_cast<size_t>(v)] = v % num_colors;
  }
  for (int u = 0; u < num_colors; ++u) {
    for (int v = u + 1; v < num_colors; ++v) {
      Status added = instance.graph.AddEdge(u, v);
      if (!added.ok()) return added;
    }
  }
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) {
      if (instance.color[static_cast<size_t>(u)] ==
          instance.color[static_cast<size_t>(v)]) {
        continue;  // intra-group edges would break k-colorability
      }
      if (u < num_colors && v < num_colors) continue;  // clique edge exists
      if (!rng.Bernoulli(edge_prob)) continue;
      Status added = instance.graph.AddEdge(u, v);
      if (!added.ok()) return added;
    }
  }
  return instance;
}

}  // namespace workloads
}  // namespace qmqo
