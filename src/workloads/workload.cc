#include "workloads/workload.h"

namespace qmqo {
namespace workloads {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kMaxClique:
      return "max_clique";
    case WorkloadKind::kMaxCut:
      return "max_cut";
    case WorkloadKind::kGraphColoring:
      return "coloring";
  }
  return "unknown";
}

bool ParseWorkloadKind(const std::string& name, WorkloadKind* out) {
  if (name == "max_clique") {
    *out = WorkloadKind::kMaxClique;
    return true;
  }
  if (name == "max_cut") {
    *out = WorkloadKind::kMaxCut;
    return true;
  }
  if (name == "coloring") {
    *out = WorkloadKind::kGraphColoring;
    return true;
  }
  return false;
}

}  // namespace workloads
}  // namespace qmqo
