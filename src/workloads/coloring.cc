#include "workloads/coloring.h"

#include <cmath>
#include <utility>

#include "util/string_util.h"

namespace qmqo {
namespace workloads {

ColoringWorkload::ColoringWorkload(Graph graph, int num_colors,
                                   const ColoringOptions& options)
    : graph_(std::move(graph)),
      num_colors_(num_colors),
      options_(options),
      qubo_(graph_.num_nodes() * num_colors) {
  const int n = graph_.num_nodes();
  const int k = num_colors_;
  const double a = options_.one_hot_penalty;
  // A * (1 - sum_c x)^2 = A - 2A sum_c x + A sum_c x + 2A sum_{c<c'} x x
  // (x^2 = x for binaries): linear -A per variable, +2A per same-vertex
  // color pair, constant A*n carried by energy_offset().
  for (int v = 0; v < n; ++v) {
    for (int c = 0; c < k; ++c) {
      qubo_.AddLinear(v * k + c, -a);
      for (int c2 = c + 1; c2 < k; ++c2) {
        qubo_.AddQuadratic(v * k + c, v * k + c2, 2.0 * a);
      }
    }
  }
  for (const Edge& e : graph_.edges()) {
    for (int c = 0; c < k; ++c) {
      qubo_.AddQuadratic(e.u * k + c, e.v * k + c,
                         options_.conflict_penalty);
    }
  }
  qubo_.Finalize();
}

Result<std::shared_ptr<ColoringWorkload>> ColoringWorkload::Create(
    Graph graph, int num_colors, const ColoringOptions& options) {
  if (graph.num_nodes() < 1) {
    return Status::InvalidArgument("coloring graph needs >= 1 node");
  }
  if (num_colors < 1) {
    return Status::InvalidArgument("coloring needs >= 1 color");
  }
  if (!std::isfinite(options.one_hot_penalty) ||
      options.one_hot_penalty <= 0.0 ||
      !std::isfinite(options.conflict_penalty) ||
      options.conflict_penalty <= 0.0) {
    return Status::InvalidArgument("coloring penalties must be positive");
  }
  return std::shared_ptr<ColoringWorkload>(new ColoringWorkload(
      std::move(graph), num_colors, options));
}

Result<std::shared_ptr<ColoringWorkload>> ColoringWorkload::MakePlanted(
    int num_nodes, int num_colors, double edge_prob, uint64_t seed,
    const ColoringOptions& options) {
  Result<KColorableInstance> instance =
      KColorableGraph(num_nodes, num_colors, edge_prob, seed);
  QMQO_RETURN_IF_ERROR(instance.status());
  return Create(std::move(instance->graph), num_colors, options);
}

std::string ColoringWorkload::name() const {
  return StrFormat("coloring(%dn/%de, k=%d)", graph_.num_nodes(),
                   graph_.num_edges(), num_colors_);
}

double ColoringWorkload::ConflictCount(const std::vector<int>& color) const {
  double conflicts = 0.0;
  for (const Edge& e : graph_.edges()) {
    if (color[static_cast<size_t>(e.u)] == color[static_cast<size_t>(e.v)]) {
      conflicts += 1.0;
    }
  }
  return conflicts;
}

WorkloadSolution ColoringWorkload::Decode(
    const std::vector<uint8_t>& x) const {
  const int n = graph_.num_nodes();
  const int k = num_colors_;
  WorkloadSolution solution;
  solution.labels.resize(static_cast<size_t>(n), -1);
  // Pass 1: vertices with exactly one hot color keep it (the well-formed
  // one-hot reads).
  for (int v = 0; v < n; ++v) {
    int hot = -1;
    int hot_count = 0;
    for (int c = 0; c < k; ++c) {
      const size_t var = static_cast<size_t>(v * k + c);
      if (var < x.size() && x[var]) {
        if (hot < 0) hot = c;
        ++hot_count;
      }
    }
    if (hot_count == 1) solution.labels[static_cast<size_t>(v)] = hot;
  }
  // Pass 2: repair the rest in id order — each unlabeled (or multi-hot)
  // vertex takes the color with the fewest conflicts among neighbors
  // already labeled, lowest color on ties. Pure function of the bits.
  for (int v = 0; v < n; ++v) {
    if (solution.labels[static_cast<size_t>(v)] >= 0) continue;
    int best_color = 0;
    int best_conflicts = graph_.num_nodes() + 1;
    for (int c = 0; c < k; ++c) {
      int conflicts = 0;
      for (int u : graph_.neighbors(v)) {
        if (solution.labels[static_cast<size_t>(u)] == c) ++conflicts;
      }
      if (conflicts < best_conflicts) {
        best_conflicts = conflicts;
        best_color = c;
      }
    }
    solution.labels[static_cast<size_t>(v)] = best_color;
  }
  solution.objective = ConflictCount(solution.labels);
  solution.feasible = solution.objective == 0.0;
  return solution;
}

Status ColoringWorkload::ValidateFeasible(
    const WorkloadSolution& solution) const {
  const int n = graph_.num_nodes();
  if (static_cast<int>(solution.labels.size()) != n) {
    return Status::InvalidArgument(
        StrFormat("expected %d labels, got %zu", n, solution.labels.size()));
  }
  for (int v = 0; v < n; ++v) {
    const int label = solution.labels[static_cast<size_t>(v)];
    if (label < 0 || label >= num_colors_) {
      return Status::InvalidArgument(StrFormat(
          "node %d has color %d outside [0, %d)", v, label, num_colors_));
    }
  }
  const double conflicts = ConflictCount(solution.labels);
  if (conflicts != solution.objective) {
    return Status::InvalidArgument(
        StrFormat("objective %g does not match recomputed conflicts %g",
                  solution.objective, conflicts));
  }
  if (conflicts > 0.0) {
    return Status::InvalidArgument(StrFormat(
        "%g conflicting edges — not a proper %d-coloring", conflicts,
        num_colors_));
  }
  return Status::OK();
}

}  // namespace workloads
}  // namespace qmqo
