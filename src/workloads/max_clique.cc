#include "workloads/max_clique.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace qmqo {
namespace workloads {

MaxCliqueWorkload::MaxCliqueWorkload(Graph graph, int known_clique_size,
                                     const MaxCliqueOptions& options)
    : graph_(std::move(graph)),
      known_clique_size_(known_clique_size),
      options_(options),
      qubo_(graph_.num_nodes()) {
  const int n = graph_.num_nodes();
  for (int v = 0; v < n; ++v) {
    qubo_.AddLinear(v, -options_.vertex_reward);
  }
  // Penalize every *complement* pair. Quadratic in n, which is fine at the
  // workload sizes the annealers handle; the interaction list stays sparse
  // for dense graphs (few non-edges).
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (!graph_.HasEdge(u, v)) {
        qubo_.AddQuadratic(u, v, options_.conflict_penalty);
      }
    }
  }
  qubo_.Finalize();
}

Result<std::shared_ptr<MaxCliqueWorkload>> MaxCliqueWorkload::Create(
    Graph graph, int known_clique_size, const MaxCliqueOptions& options) {
  if (graph.num_nodes() < 1) {
    return Status::InvalidArgument("max-clique graph needs >= 1 node");
  }
  if (!std::isfinite(options.vertex_reward) || options.vertex_reward <= 0.0) {
    return Status::InvalidArgument("vertex reward A must be positive");
  }
  if (!std::isfinite(options.conflict_penalty) ||
      options.conflict_penalty <= options.vertex_reward) {
    return Status::InvalidArgument(
        "conflict penalty B must exceed the vertex reward A or ground "
        "states may select non-edges");
  }
  if (known_clique_size < 1 || known_clique_size > graph.num_nodes()) {
    return Status::InvalidArgument(
        StrFormat("known clique size %d out of range [1, %d]",
                  known_clique_size, graph.num_nodes()));
  }
  return std::shared_ptr<MaxCliqueWorkload>(new MaxCliqueWorkload(
      std::move(graph), known_clique_size, options));
}

Result<std::shared_ptr<MaxCliqueWorkload>> MaxCliqueWorkload::MakePlanted(
    int num_nodes, int clique_size, double edge_prob, uint64_t seed,
    const MaxCliqueOptions& options) {
  Result<PlantedCliqueInstance> instance =
      PlantedCliqueGraph(num_nodes, clique_size, edge_prob, seed);
  QMQO_RETURN_IF_ERROR(instance.status());
  return Create(std::move(instance->graph), clique_size, options);
}

std::string MaxCliqueWorkload::name() const {
  return StrFormat("max_clique(%dn/%de, planted %d)", graph_.num_nodes(),
                   graph_.num_edges(), known_clique_size_);
}

WorkloadSolution MaxCliqueWorkload::Decode(
    const std::vector<uint8_t>& x) const {
  const int n = graph_.num_nodes();
  std::vector<uint8_t> in(static_cast<size_t>(n), 0);
  for (int v = 0; v < n && v < static_cast<int>(x.size()); ++v) {
    in[static_cast<size_t>(v)] = x[static_cast<size_t>(v)] ? 1 : 0;
  }
  // Repair: while the selection has a non-adjacent pair, drop the vertex
  // with the most missing edges inside the selection (lowest id on ties).
  // Pure function of the input bits — repeated decodes agree byte-for-byte.
  while (true) {
    int worst = -1;
    int worst_conflicts = 0;
    for (int v = 0; v < n; ++v) {
      if (!in[static_cast<size_t>(v)]) continue;
      int conflicts = 0;
      for (int u = 0; u < n; ++u) {
        if (u == v || !in[static_cast<size_t>(u)]) continue;
        if (!graph_.HasEdge(u, v)) ++conflicts;
      }
      if (conflicts > worst_conflicts) {
        worst_conflicts = conflicts;
        worst = v;
      }
    }
    if (worst < 0) break;
    in[static_cast<size_t>(worst)] = 0;
  }
  WorkloadSolution solution;
  solution.labels.assign(in.begin(), in.end());
  int size = 0;
  for (uint8_t bit : in) size += bit;
  solution.objective = static_cast<double>(size);
  solution.feasible = true;
  return solution;
}

Status MaxCliqueWorkload::ValidateFeasible(
    const WorkloadSolution& solution) const {
  const int n = graph_.num_nodes();
  if (static_cast<int>(solution.labels.size()) != n) {
    return Status::InvalidArgument(
        StrFormat("expected %d labels, got %zu", n, solution.labels.size()));
  }
  int size = 0;
  for (int v = 0; v < n; ++v) {
    const int label = solution.labels[static_cast<size_t>(v)];
    if (label != 0 && label != 1) {
      return Status::InvalidArgument(
          StrFormat("node %d has non-binary clique label %d", v, label));
    }
    size += label;
  }
  for (int u = 0; u < n; ++u) {
    if (!solution.labels[static_cast<size_t>(u)]) continue;
    for (int v = u + 1; v < n; ++v) {
      if (!solution.labels[static_cast<size_t>(v)]) continue;
      if (!graph_.HasEdge(u, v)) {
        return Status::InvalidArgument(StrFormat(
            "selected nodes %d and %d are not adjacent — not a clique", u,
            v));
      }
    }
  }
  if (static_cast<double>(size) != solution.objective) {
    return Status::InvalidArgument(
        StrFormat("objective %g does not match selected size %d",
                  solution.objective, size));
  }
  return Status::OK();
}

}  // namespace workloads
}  // namespace qmqo
