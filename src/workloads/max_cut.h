#ifndef QMQO_WORKLOADS_MAX_CUT_H_
#define QMQO_WORKLOADS_MAX_CUT_H_

/// \file max_cut.h
/// Weighted maximum cut as a QUBO (the textbook Djidjev et al. mapping).
///
/// One binary variable per vertex (x_v = side of the cut):
///
///   minimize  sum_{(u,v) in E} w_uv * (2 x_u x_v - x_u - x_v)
///
/// Each edge contributes -w_uv exactly when its endpoints differ, so
/// E(x) = -cut(x) and the ground energy is -maxcut(G). There are no hard
/// constraints: every bitstring is a feasible cut, which makes this the
/// pure-objective stress test of the sampler stack (no penalty tuning).

#include <cstdint>
#include <memory>
#include <vector>

#include "workloads/workload.h"

namespace qmqo {
namespace workloads {

class MaxCutWorkload : public Workload {
 public:
  /// Formulates `graph`; `known_cut_weight` is the generator-planted
  /// maximum cut weight (for bipartite planted cuts: the total weight).
  static Result<std::shared_ptr<MaxCutWorkload>> Create(
      Graph graph, double known_cut_weight);

  /// Convenience: generates a bipartite planted-cut instance (see
  /// `PlantedCutGraph`) and formulates it; the known optimum is the
  /// instance's total edge weight.
  static Result<std::shared_ptr<MaxCutWorkload>> MakePlanted(
      int num_nodes, double edge_prob, double max_weight, uint64_t seed);

  WorkloadKind kind() const override { return WorkloadKind::kMaxCut; }
  std::string name() const override;
  const Graph& graph() const override { return graph_; }
  const qubo::QuboProblem& qubo() const override { return qubo_; }
  double energy_offset() const override { return 0.0; }
  double known_optimum() const override { return known_cut_weight_; }
  ObjectiveSense sense() const override { return ObjectiveSense::kMaximize; }
  WorkloadSolution Decode(const std::vector<uint8_t>& x) const override;
  Status ValidateFeasible(const WorkloadSolution& solution) const override;

  /// Cut weight of a 0/1 side assignment.
  double CutWeight(const std::vector<int>& side) const;

 private:
  MaxCutWorkload(Graph graph, double known_cut_weight);

  Graph graph_;
  double known_cut_weight_;
  qubo::QuboProblem qubo_;
};

}  // namespace workloads
}  // namespace qmqo

#endif  // QMQO_WORKLOADS_MAX_CUT_H_
