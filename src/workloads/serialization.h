#ifndef QMQO_WORKLOADS_SERIALIZATION_H_
#define QMQO_WORKLOADS_SERIALIZATION_H_

/// \file serialization.h
/// The v1 wire format for workload requests, alongside the MQO format
/// (mqo/serialization.h) in the service's `SubmitText`. Line-oriented,
/// comments start with '#':
///
///   workload v1
///   type max_clique            # or max_cut, coloring
///   nodes <n>
///   colors <k>                 # coloring only
///   optimum <value>            # optional generator-planted optimum
///   edge <u> <v> [weight]      # one line per edge; weight defaults to 1
///   end
///
/// Parsing uses the hardened numeric helpers (`ParseInt` /
/// `ParseFiniteDouble`) and caps payload size and node count, so hostile
/// payloads become typed `InvalidArgument` rejections, never allocations
/// or wrong values.

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "workloads/workload.h"

namespace qmqo {
namespace workloads {

/// A parsed (but not yet formulated) workload request.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kMaxCut;
  Graph graph{0};
  /// Colors for coloring workloads (0 otherwise).
  int num_colors = 0;
  /// Generator-planted optimum carried on the wire; NaN when absent.
  double optimum = 0.0;
  bool has_optimum = false;
};

/// Serializes a spec into the v1 wire format.
std::string ToText(const WorkloadSpec& spec);

/// Parses the v1 wire format. Unknown `type` tags, malformed numerics,
/// oversized payloads, and inconsistent directives (colors outside a
/// coloring workload, edges out of range, duplicates) are
/// `InvalidArgument`.
Result<WorkloadSpec> FromText(const std::string& text);

/// Formulates a parsed spec into a ready-to-solve workload. Without a wire
/// `optimum` the known optimum defaults conservatively (clique: 1, cut: 0,
/// coloring: 0) so gap reporting stays defined.
Result<std::shared_ptr<Workload>> MakeWorkload(const WorkloadSpec& spec);

/// Serializes a formulated workload back into a spec (round-trip support).
WorkloadSpec SpecOf(const Workload& workload);

}  // namespace workloads
}  // namespace qmqo

#endif  // QMQO_WORKLOADS_SERIALIZATION_H_
