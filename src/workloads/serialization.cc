#include "workloads/serialization.h"

#include <cmath>
#include <sstream>

#include "util/string_util.h"
#include "workloads/coloring.h"
#include "workloads/max_clique.h"
#include "workloads/max_cut.h"

namespace qmqo {
namespace workloads {
namespace {

/// Hostile-input guards, mirroring the MQO wire format: cap the payload
/// before any work, and cap the node count before sizing any allocation
/// by it.
constexpr size_t kMaxPayloadBytes = 16u << 20;  // 16 MiB
constexpr int kMaxNodes = 1 << 20;
constexpr int kMaxColors = 1 << 10;

}  // namespace

std::string ToText(const WorkloadSpec& spec) {
  std::string out = "workload v1\n";
  out += StrFormat("type %s\n", WorkloadKindName(spec.kind));
  out += StrFormat("nodes %d\n", spec.graph.num_nodes());
  if (spec.kind == WorkloadKind::kGraphColoring) {
    out += StrFormat("colors %d\n", spec.num_colors);
  }
  if (spec.has_optimum) {
    out += StrFormat("optimum %.17g\n", spec.optimum);
  }
  for (const Edge& e : spec.graph.edges()) {
    if (e.weight == 1.0) {
      out += StrFormat("edge %d %d\n", e.u, e.v);
    } else {
      out += StrFormat("edge %d %d %.17g\n", e.u, e.v, e.weight);
    }
  }
  out += "end\n";
  return out;
}

Result<WorkloadSpec> FromText(const std::string& text) {
  if (text.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        StrFormat("oversized payload: %zu bytes (limit %zu)", text.size(),
                  kMaxPayloadBytes));
  }
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  bool saw_end = false;
  bool saw_type = false;
  bool saw_nodes = false;
  WorkloadSpec spec;
  std::vector<Edge> pending_edges;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "workload v1") {
        return Status::InvalidArgument(
            StrFormat("line %d: expected header 'workload v1'", line_no));
      }
      saw_header = true;
      continue;
    }
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.empty()) continue;
    if (fields[0] == "type") {
      if (fields.size() != 2 || !ParseWorkloadKind(fields[1], &spec.kind)) {
        return Status::InvalidArgument(StrFormat(
            "line %d: unknown workload type '%s'", line_no,
            fields.size() > 1 ? fields[1].c_str() : ""));
      }
      saw_type = true;
    } else if (fields[0] == "nodes") {
      int n = 0;
      if (fields.size() != 2 || !ParseInt(fields[1], &n) || n < 1 ||
          n > kMaxNodes) {
        return Status::InvalidArgument(StrFormat(
            "line %d: bad node count (limit %d)", line_no, kMaxNodes));
      }
      spec.graph = Graph(n);
      saw_nodes = true;
    } else if (fields[0] == "colors") {
      int k = 0;
      if (fields.size() != 2 || !ParseInt(fields[1], &k) || k < 1 ||
          k > kMaxColors) {
        return Status::InvalidArgument(StrFormat(
            "line %d: bad color count (limit %d)", line_no, kMaxColors));
      }
      spec.num_colors = k;
    } else if (fields[0] == "optimum") {
      double v = 0.0;
      if (fields.size() != 2 || !ParseFiniteDouble(fields[1], &v)) {
        return Status::InvalidArgument(
            StrFormat("line %d: bad optimum", line_no));
      }
      spec.optimum = v;
      spec.has_optimum = true;
    } else if (fields[0] == "edge") {
      if (!saw_nodes) {
        return Status::InvalidArgument(StrFormat(
            "line %d: 'edge' before 'nodes'", line_no));
      }
      if (fields.size() != 3 && fields.size() != 4) {
        return Status::InvalidArgument(StrFormat(
            "line %d: edge needs 2 endpoints and an optional weight",
            line_no));
      }
      int u = 0;
      int v = 0;
      double w = 1.0;
      if (!ParseInt(fields[1], &u) || !ParseInt(fields[2], &v) ||
          (fields.size() == 4 && !ParseFiniteDouble(fields[3], &w))) {
        return Status::InvalidArgument(
            StrFormat("line %d: bad edge '%s'", line_no, line.c_str()));
      }
      Status added = spec.graph.AddEdge(u, v, w);
      if (!added.ok()) {
        return Status::InvalidArgument(StrFormat(
            "line %d: %s", line_no, added.message().c_str()));
      }
    } else {
      return Status::InvalidArgument(
          StrFormat("line %d: unknown directive '%s'", line_no,
                    fields[0].c_str()));
    }
  }
  if (!saw_header) {
    return Status::InvalidArgument("missing 'workload v1' header");
  }
  if (!saw_end) return Status::InvalidArgument("missing 'end' terminator");
  if (!saw_type) return Status::InvalidArgument("missing 'type' directive");
  if (!saw_nodes) return Status::InvalidArgument("missing 'nodes' directive");
  if (spec.kind == WorkloadKind::kGraphColoring) {
    if (spec.num_colors < 1) {
      return Status::InvalidArgument(
          "coloring workload requires a 'colors' directive");
    }
    // Guard the k*n variable blow-up before formulation allocates it.
    if (static_cast<int64_t>(spec.num_colors) * spec.graph.num_nodes() >
        kMaxNodes) {
      return Status::InvalidArgument(StrFormat(
          "coloring instance needs %lld variables (limit %d)",
          static_cast<long long>(spec.num_colors) * spec.graph.num_nodes(),
          kMaxNodes));
    }
  } else if (spec.num_colors != 0) {
    return Status::InvalidArgument(
        StrFormat("'colors' is only valid for coloring workloads, not %s",
                  WorkloadKindName(spec.kind)));
  }
  return spec;
}

Result<std::shared_ptr<Workload>> MakeWorkload(const WorkloadSpec& spec) {
  switch (spec.kind) {
    case WorkloadKind::kMaxClique: {
      int known = 1;
      if (spec.has_optimum) {
        if (spec.optimum < 1.0 ||
            spec.optimum > spec.graph.num_nodes() ||
            spec.optimum != std::floor(spec.optimum)) {
          return Status::InvalidArgument(
              "max-clique optimum must be an integer clique size");
        }
        known = static_cast<int>(spec.optimum);
      }
      Result<std::shared_ptr<MaxCliqueWorkload>> made =
          MaxCliqueWorkload::Create(spec.graph, known);
      QMQO_RETURN_IF_ERROR(made.status());
      return std::shared_ptr<Workload>(std::move(made).value());
    }
    case WorkloadKind::kMaxCut: {
      Result<std::shared_ptr<MaxCutWorkload>> made = MaxCutWorkload::Create(
          spec.graph, spec.has_optimum ? spec.optimum : 0.0);
      QMQO_RETURN_IF_ERROR(made.status());
      return std::shared_ptr<Workload>(std::move(made).value());
    }
    case WorkloadKind::kGraphColoring: {
      Result<std::shared_ptr<ColoringWorkload>> made =
          ColoringWorkload::Create(spec.graph, spec.num_colors);
      QMQO_RETURN_IF_ERROR(made.status());
      return std::shared_ptr<Workload>(std::move(made).value());
    }
  }
  return Status::InvalidArgument("unknown workload kind");
}

WorkloadSpec SpecOf(const Workload& workload) {
  WorkloadSpec spec;
  spec.kind = workload.kind();
  spec.graph = workload.graph();
  spec.optimum = workload.known_optimum();
  spec.has_optimum = true;
  if (workload.kind() == WorkloadKind::kGraphColoring) {
    spec.num_colors =
        static_cast<const ColoringWorkload&>(workload).num_colors();
  }
  return spec;
}

}  // namespace workloads
}  // namespace qmqo
