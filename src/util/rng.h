#ifndef QMQO_UTIL_RNG_H_
#define QMQO_UTIL_RNG_H_

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All randomized components of the library (workload generators, annealers,
/// genetic algorithm, ...) take an explicit `Rng*` so that every experiment
/// is reproducible from a single seed. `Rng::Fork` derives independent child
/// streams, which keeps parallel or per-restart randomness decoupled from the
/// consumption pattern of the parent stream.

#include <cstdint>
#include <random>
#include <vector>

namespace qmqo {

/// Seedable pseudo-random number generator (xoshiro-quality via mt19937_64).
class Rng {
 public:
  /// Creates a generator from a 64-bit seed; equal seeds yield equal streams.
  explicit Rng(uint64_t seed) : engine_(Scramble(seed)), seed_(seed) {}

  /// Returns the seed this generator was constructed with.
  uint64_t seed() const { return seed_; }

  /// Returns the next raw 64-bit value.
  uint64_t Next() { return engine_(); }

  /// Returns a uniform integer in the inclusive range [lo, hi].
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Returns a uniform 64-bit integer in the inclusive range [lo, hi].
  int64_t UniformInt64(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Returns a uniform double in the half-open range [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Returns a normally distributed double.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniformly shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt64(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Picks `count` distinct indices from [0, n) uniformly at random.
  std::vector<int> SampleWithoutReplacement(int n, int count);

  /// Derives an independent child generator; children with distinct `salt`
  /// values are decorrelated from each other and from the parent. Depends
  /// only on the construction seed (not on draws made so far), so forking
  /// is safe from concurrent reader threads and independent of fork order.
  Rng Fork(uint64_t salt) const {
    return Rng(Scramble(seed_ ^ (0x9e3779b97f4a7c15ULL * (salt + 1))));
  }

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  /// splitmix64 finalizer; decorrelates sequential seeds.
  static uint64_t Scramble(uint64_t x);

  std::mt19937_64 engine_;
  uint64_t seed_;
};

/// A small, fast counterpart to `Rng`: xoshiro256++ (~1 ns per draw vs
/// ~12 ns for mt19937_64), for hot loops that consume bulk randomness —
/// the checkerboard sweep kernels fill per-color-class uniform buffers
/// from one of these. Seed it from the owning `Rng` stream
/// (`FastRng(rng.Next())`) so determinism and fork discipline still hang
/// off the single experiment seed. Not a drop-in for `Rng`: no
/// distributions, no forking.
class FastRng {
 public:
  /// Expands the 64-bit seed into the 256-bit state with splitmix64.
  explicit FastRng(uint64_t seed) {
    uint64_t x = seed;
    for (uint64_t& word : state_) {
      // splitmix64 step (same finalizer as Rng::Scramble).
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value (xoshiro256++).
  uint64_t Next() {
    uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): the top 53 bits scaled by 2^-53 — exactly
  /// uniform over the representable grid.
  double NextUniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Fills `out[0, count)` with uniforms in [0, 1).
  void FillUniform(double* out, int count) {
    for (int i = 0; i < count; ++i) out[i] = NextUniform();
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace qmqo

#endif  // QMQO_UTIL_RNG_H_
