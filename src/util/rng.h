#ifndef QMQO_UTIL_RNG_H_
#define QMQO_UTIL_RNG_H_

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All randomized components of the library (workload generators, annealers,
/// genetic algorithm, ...) take an explicit `Rng*` so that every experiment
/// is reproducible from a single seed. `Rng::Fork` derives independent child
/// streams, which keeps parallel or per-restart randomness decoupled from the
/// consumption pattern of the parent stream.

#include <cstdint>
#include <random>
#include <vector>

namespace qmqo {

/// Seedable pseudo-random number generator (xoshiro-quality via mt19937_64).
class Rng {
 public:
  /// Creates a generator from a 64-bit seed; equal seeds yield equal streams.
  explicit Rng(uint64_t seed) : engine_(Scramble(seed)), seed_(seed) {}

  /// Returns the seed this generator was constructed with.
  uint64_t seed() const { return seed_; }

  /// Returns the next raw 64-bit value.
  uint64_t Next() { return engine_(); }

  /// Returns a uniform integer in the inclusive range [lo, hi].
  int UniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Returns a uniform 64-bit integer in the inclusive range [lo, hi].
  int64_t UniformInt64(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Returns a uniform double in the half-open range [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Returns a normally distributed double.
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Uniformly shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt64(0, static_cast<int64_t>(i) - 1));
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Picks `count` distinct indices from [0, n) uniformly at random.
  std::vector<int> SampleWithoutReplacement(int n, int count);

  /// Derives an independent child generator; children with distinct `salt`
  /// values are decorrelated from each other and from the parent. Depends
  /// only on the construction seed (not on draws made so far), so forking
  /// is safe from concurrent reader threads and independent of fork order.
  Rng Fork(uint64_t salt) const {
    return Rng(Scramble(seed_ ^ (0x9e3779b97f4a7c15ULL * (salt + 1))));
  }

  /// Access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  /// splitmix64 finalizer; decorrelates sequential seeds.
  static uint64_t Scramble(uint64_t x);

  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace qmqo

#endif  // QMQO_UTIL_RNG_H_
