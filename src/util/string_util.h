#ifndef QMQO_UTIL_STRING_UTIL_H_
#define QMQO_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers shared by serialization and reporting code.

#include <string>
#include <vector>

namespace qmqo {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// True when `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Escapes `s` for use inside a double-quoted JSON string: backslash,
/// double quote, and control characters (RFC 8259 requires escaping
/// U+0000..U+001F). Every hand-rolled JSON writer in the repo must run
/// keys and string values through this — metric names carry literal
/// label blocks (`x_total{reason="invalid"}`), so unescaped keys produce
/// invalid JSON.
std::string EscapeJson(const std::string& s);

/// Parses a whole decimal integer into `*out`. False (out untouched) when
/// `s` is empty, has trailing garbage, or does not fit an int — unlike
/// `atoi`, which silently returns 0 on garbage and has undefined behavior
/// on overflow. Deserializers use this so hostile payloads become typed
/// parse errors, never wrong values.
bool ParseInt(const std::string& s, int* out);

/// Parses a whole finite double into `*out`. False when `s` is empty, has
/// trailing garbage, overflows, or encodes NaN/infinity — non-finite
/// values poison cost arithmetic downstream (NaN slips through every
/// `< 0` validation), so wire parsers reject them at the boundary.
bool ParseFiniteDouble(const std::string& s, double* out);

}  // namespace qmqo

#endif  // QMQO_UTIL_STRING_UTIL_H_
