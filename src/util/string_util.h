#ifndef QMQO_UTIL_STRING_UTIL_H_
#define QMQO_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers shared by serialization and reporting code.

#include <string>
#include <vector>

namespace qmqo {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(const std::string& s, char delim);

/// Strips leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// True when `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace qmqo

#endif  // QMQO_UTIL_STRING_UTIL_H_
