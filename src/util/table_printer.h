#ifndef QMQO_UTIL_TABLE_PRINTER_H_
#define QMQO_UTIL_TABLE_PRINTER_H_

/// \file table_printer.h
/// Fixed-width text tables for benchmark output, mirroring the row/column
/// layout of the paper's tables so results can be compared side by side.

#include <string>
#include <vector>

namespace qmqo {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// `header` defines the column names and the column count.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Renders the table, one row per line, columns padded to equal width.
  std::string ToString() const;

  /// Renders as a GitHub-flavored markdown table.
  std::string ToMarkdown() const;

  /// Renders as CSV (no escaping of embedded commas; cells must be simple).
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qmqo

#endif  // QMQO_UTIL_TABLE_PRINTER_H_
