#ifndef QMQO_UTIL_DEADLINE_H_
#define QMQO_UTIL_DEADLINE_H_

/// \file deadline.h
/// Wall-clock deadlines for the resilient solve orchestrator and the solve
/// service.
///
/// A `Deadline` is a fixed point on the monotonic clock; components that
/// accept one check `expired()` between units of work and use
/// `remaining_millis()` to size retries and backoff sleeps. A
/// default-constructed deadline never expires, so "no deadline" needs no
/// separate code path.
///
/// Besides wall time, a deadline carries an optional *modeled* time debit
/// (`Charge`): fault injection simulates device latency without sleeping,
/// and the orchestrator charges those modeled milliseconds against the
/// budget so deadline behavior is testable deterministically — a charged
/// deadline expires exactly when wall + charged time exceeds the budget.
///
/// `Charge` is safe to call concurrently (the solve service's worker lanes
/// charge one shared per-request deadline from several threads); the debit
/// is a lock-free atomic accumulation, so concurrent charges never lose
/// milliseconds. Copying a deadline snapshots the charge accumulated so
/// far; the copy and the original then charge independently.

#include <atomic>
#include <chrono>
#include <limits>

namespace qmqo {
namespace util {

/// A point in time the work must finish by (monotonic clock), plus a
/// modeled-time debit for simulated latency.
class Deadline {
 public:
  /// Never expires.
  Deadline() = default;

  Deadline(const Deadline& other)
      : has_budget_(other.has_budget_),
        budget_ms_(other.budget_ms_),
        charged_ms_(other.charged_ms_.load(std::memory_order_relaxed)),
        start_(other.start_) {}

  Deadline& operator=(const Deadline& other) {
    has_budget_ = other.has_budget_;
    budget_ms_ = other.budget_ms_;
    charged_ms_.store(other.charged_ms_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    start_ = other.start_;
    return *this;
  }

  /// Expires `budget_ms` wall-clock milliseconds after now. Non-positive
  /// budgets yield an already-expired deadline.
  static Deadline AfterMillis(double budget_ms) {
    Deadline d;
    d.has_budget_ = true;
    d.budget_ms_ = budget_ms;
    d.start_ = Clock::now();
    return d;
  }

  /// The infinite deadline, spelled out.
  static Deadline Infinite() { return Deadline(); }

  bool has_budget() const { return has_budget_; }

  /// Wall milliseconds elapsed since the deadline was armed (0 for the
  /// infinite deadline), plus any modeled charge.
  double ElapsedMillis() const {
    if (!has_budget_) return charged_millis();
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - start_);
    return static_cast<double>(elapsed.count()) / 1000.0 + charged_millis();
  }

  /// Milliseconds left before expiry; +inf for the infinite deadline,
  /// clamped at 0 once expired.
  double RemainingMillis() const {
    if (!has_budget_) return std::numeric_limits<double>::infinity();
    double remaining = budget_ms_ - ElapsedMillis();
    return remaining > 0.0 ? remaining : 0.0;
  }

  bool expired() const { return has_budget_ && RemainingMillis() <= 0.0; }

  /// Debits `ms` of modeled time (simulated device latency, modeled
  /// backoff) against the budget. No-op for non-positive `ms`. Thread-safe:
  /// concurrent charges accumulate without losing updates (CAS loop —
  /// `std::atomic<double>` has no fetch_add before C++20).
  void Charge(double ms) {
    if (ms <= 0.0) return;
    double current = charged_ms_.load(std::memory_order_relaxed);
    while (!charged_ms_.compare_exchange_weak(current, current + ms,
                                              std::memory_order_relaxed)) {
    }
  }

  /// Total modeled time charged so far.
  double charged_millis() const {
    return charged_ms_.load(std::memory_order_relaxed);
  }

 private:
  using Clock = std::chrono::steady_clock;

  bool has_budget_ = false;
  double budget_ms_ = 0.0;
  std::atomic<double> charged_ms_{0.0};
  Clock::time_point start_{};
};

}  // namespace util
}  // namespace qmqo

#endif  // QMQO_UTIL_DEADLINE_H_
