#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace qmqo {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == delim) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool ParseInt(const std::string& s, int* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (v < static_cast<long>(std::numeric_limits<int>::min()) ||
      v > static_cast<long>(std::numeric_limits<int>::max())) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseFiniteDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

}  // namespace qmqo
