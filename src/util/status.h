#ifndef QMQO_UTIL_STATUS_H_
#define QMQO_UTIL_STATUS_H_

/// \file status.h
/// Error-handling primitives for the qmqo library.
///
/// Following the conventions of large C++ database systems (RocksDB, Arrow),
/// the library does not throw exceptions: fallible operations return a
/// `Status`, and fallible operations that produce a value return a
/// `Result<T>`. Both are cheap to move and carry a machine-readable code plus
/// a human-readable message.

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace qmqo {

/// Machine-readable error category, modeled after absl/arrow status codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kTimeout,
  kUnavailable,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail but returns no value.
///
/// A default-constructed `Status` is OK. Error statuses carry a message
/// describing what went wrong; callers are expected to check `ok()` (or use
/// the QMQO_RETURN_IF_ERROR macro) before relying on any side effects.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats the status as "CODE: message" (or "OK").
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// The result of an operation that produces a `T` on success.
///
/// Either holds a value (status is OK) or an error status. Accessing the
/// value of an errored result aborts in debug builds and is undefined in
/// release builds, mirroring arrow::Result semantics.
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  /// Returns the contained value; requires `ok()`.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the current function.
#define QMQO_RETURN_IF_ERROR(expr)           \
  do {                                       \
    ::qmqo::Status _qmqo_status = (expr);    \
    if (!_qmqo_status.ok()) {                \
      return _qmqo_status;                   \
    }                                        \
  } while (false)

#define QMQO_CONCAT_IMPL(a, b) a##b
#define QMQO_CONCAT(a, b) QMQO_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define QMQO_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  QMQO_ASSIGN_OR_RETURN_IMPL(QMQO_CONCAT(_qmqo_res_, __LINE__), \
                             lhs, rexpr)

#define QMQO_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

}  // namespace qmqo

#endif  // QMQO_UTIL_STATUS_H_
