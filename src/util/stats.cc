#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace qmqo {

void SummaryStats::Add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void SummaryStats::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double SummaryStats::Min() const {
  assert(!values_.empty());
  EnsureSorted();
  return sorted_.front();
}

double SummaryStats::Max() const {
  assert(!values_.empty());
  EnsureSorted();
  return sorted_.back();
}

double SummaryStats::Mean() const {
  assert(!values_.empty());
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double SummaryStats::Stddev() const {
  if (values_.size() < 2) return 0.0;
  double mean = Mean();
  double ss = 0.0;
  for (double v : values_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / static_cast<double>(values_.size() - 1));
}

double SummaryStats::Median() const { return Percentile(0.5); }

double SummaryStats::Percentile(double q) const {
  assert(!values_.empty());
  EnsureSorted();
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  double pos = q * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

}  // namespace qmqo
