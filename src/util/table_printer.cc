#include "util/table_printer.h"

#include <algorithm>

namespace qmqo {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    if (c > 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToMarkdown() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::string line = "|";
    for (const auto& cell : row) {
      line += " " + cell + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  std::string rule = "|";
  for (size_t c = 0; c < header_.size(); ++c) rule += "---|";
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto render_row = [](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      line += row[c];
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace qmqo
