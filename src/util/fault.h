#ifndef QMQO_UTIL_FAULT_H_
#define QMQO_UTIL_FAULT_H_

/// \file fault.h
/// Deterministic fault injection for the solve path.
///
/// The D-Wave workflow the paper describes runs on an unreliable physical
/// device: programming cycles fail, reads drop out, qubits get stuck, and
/// chains break as normal operating conditions. The simulator and the
/// resilient solve orchestrator reproduce those conditions through a
/// `FaultInjector`: a seeded registry of named *fault sites* (e.g.
/// "device.program", "device.read_dropout") that components query at the
/// points where the real system can fail.
///
/// Design constraints, in order:
///  1. **Zero cost when absent.** Components hold a `const FaultInjector*`
///     that defaults to null; the hot path pays one pointer test.
///  2. **Deterministic under threads.** Whether a site fires is a pure
///     function of (injector seed, site name, caller-supplied key) — never
///     of invocation order — so the parallel read engine stays bit-identical
///     at any thread count with faults armed. Callers pass stable keys
///     (gauge index, global read index, qubit id, attempt number).
///  3. **Observable.** Every fired fault is counted per site (atomically;
///     counts are diagnostics, not decision inputs), so reports and benches
///     can state exactly how many faults a run absorbed.
///
/// Schedules compose per site: `fail_first` makes keys [0, fail_first)
/// fire unconditionally (fail-once / fail-N-times when the caller keys by
/// attempt or cycle number), `probability` adds a seeded Bernoulli on every
/// key, and `latency_ms` models a latency spike whenever the site fires
/// (optionally backed by a real sleep).
///
/// Registered fault-site vocabulary (sites are created by arming them; this
/// is the catalog of what the solve path queries):
///
///   device.program / device.latency       keyed by epoch-gauge
///   device.read_dropout / device.chain_break  keyed by epoch<<32 | read
///   device.stuck_qubit                    keyed by qubit id
///   embed.compile                         keyed by attempt
///   pipeline.solve                        keyed by attempt
///   solve.device / solve.sqa / solve.sa / solve.greedy
///                                         keyed by 0-based attempt
///
/// Service-layer sites (see service/solve_service.h):
///
///   service.queue_stall   keyed by scheduling round — the round's modeled
///                         clock advances by the spec's latency_ms, so
///                         queued requests age toward their deadlines
///   service.worker_crash  keyed by request id — the worker session solving
///                         that request dies mid-flight; the request fails
///                         with Internal instead of producing a result
///   service.brownout      keyed by request id — the device backend browns
///                         out for that request; admission degrades the
///                         entry rung to the first classical backend

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace qmqo {
namespace util {

/// When and how one fault site fires.
struct FaultSpec {
  /// Seeded Bernoulli per key: the site fires with this probability.
  double probability = 0.0;
  /// Keys [0, fail_first) fire unconditionally — "fail the first N
  /// invocations" when the caller keys by a monotone counter.
  int64_t fail_first = 0;
  /// Modeled latency injected when the site fires, milliseconds. Charged to
  /// the caller's modeled-time accounting (see util::Deadline::Charge).
  double latency_ms = 0.0;
  /// Actually sleep for `latency_ms` when firing (off by default so fault
  /// suites stay fast; the modeled charge is what tests assert on).
  bool sleep = false;
  /// Site-specific intensity (e.g. spins to corrupt per fired chain-break
  /// read).
  int intensity = 1;
};

/// A seeded registry of fault sites. Thread-safe for concurrent queries
/// after configuration (`Arm` calls must happen before the injector is
/// shared with workers). Non-copyable; components reference one injector.
class FaultInjector {
 public:
  /// A disarmed injector: no site ever fires.
  FaultInjector() : FaultInjector(0) {}

  /// All firing decisions derive from `seed`; equal seeds and configs give
  /// equal fault patterns.
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers (or replaces) the spec of `site`. Not thread-safe; call
  /// before handing the injector to the solve path.
  void Arm(const std::string& site, const FaultSpec& spec);

  /// True when any site is armed.
  bool armed() const { return !sites_.empty(); }

  uint64_t seed() const { return seed_; }

  /// Whether `site` fires for `key`, counting the fault when it does. Pure
  /// in (seed, site, key) aside from the diagnostic counter; unarmed sites
  /// never fire. When the firing spec carries `latency_ms` with `sleep`,
  /// the calling thread sleeps here.
  bool ShouldFail(const char* site, uint64_t key = 0) const;

  /// `ShouldFail` without counting or sleeping — for re-deriving a decision
  /// already counted (e.g. serially precomputed drop masks re-checked by
  /// workers).
  bool WouldFail(const char* site, uint64_t key = 0) const;

  /// Status-typed injection point: `Status::Internal` naming the site and
  /// key when it fires, OK otherwise.
  Status MaybeFail(const char* site, uint64_t key = 0) const;

  /// Modeled latency of `site`'s spec (0 when unarmed). The caller charges
  /// this against its deadline when the site fires.
  double LatencyMillis(const char* site) const;

  /// Spec intensity of `site` (1 when unarmed).
  int Intensity(const char* site) const;

  /// Deterministic raw bits for (site, key) — auxiliary randomness for
  /// fault payloads (which qubit sticks high vs low, which spins a
  /// chain-break corrupts). Independent of the firing decision stream.
  uint64_t HashAt(const char* site, uint64_t key) const;

  /// Total faults fired across all sites since construction.
  int64_t faults_injected() const;

  /// Faults fired at `site` (0 when unarmed).
  int64_t FaultCount(const std::string& site) const;

  /// (site, count) for every armed site, in arming order.
  std::vector<std::pair<std::string, int64_t>> Counts() const;

 private:
  struct Site {
    std::string name;
    uint64_t name_hash = 0;
    FaultSpec spec;
  };

  const Site* Find(const char* site) const;
  bool Decide(const Site& site, uint64_t key) const;

  uint64_t seed_;
  std::vector<Site> sites_;
  /// Parallel to `sites_`; deque so elements stay put as sites are armed.
  mutable std::deque<std::atomic<int64_t>> counts_;
};

/// The one-line guard components use at a fault point:
///   if (util::FaultFires(options_.faults, "device.program", gauge)) ...
inline bool FaultFires(const FaultInjector* faults, const char* site,
                       uint64_t key = 0) {
  return faults != nullptr && faults->ShouldFail(site, key);
}

}  // namespace util
}  // namespace qmqo

#endif  // QMQO_UTIL_FAULT_H_
