#ifndef QMQO_UTIL_STATS_H_
#define QMQO_UTIL_STATS_H_

/// \file stats.h
/// Summary statistics used when aggregating experiment results
/// (e.g. the min/median/max columns of the paper's Table 1).

#include <cstddef>
#include <vector>

namespace qmqo {

/// Accumulates samples and reports order statistics and moments.
///
/// Samples are retained, so memory grows linearly with the number of calls to
/// `Add`; experiment aggregation deals with at most tens of thousands of
/// samples, where this is the simplest correct approach.
class SummaryStats {
 public:
  SummaryStats() = default;

  /// Adds one sample.
  void Add(double x);

  /// Number of samples added so far.
  size_t count() const { return values_.size(); }

  /// True when no samples have been added.
  bool empty() const { return values_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  /// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
  double Stddev() const;
  /// Median via the standard midpoint rule.
  double Median() const;
  /// Linear-interpolation percentile, `q` in [0,1].
  double Percentile(double q) const;

  /// All samples in insertion order.
  const std::vector<double>& values() const { return values_; }

 private:
  /// Sorts lazily before order-statistic queries.
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace qmqo

#endif  // QMQO_UTIL_STATS_H_
