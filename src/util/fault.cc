#include "util/fault.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "util/string_util.h"

namespace qmqo {
namespace util {
namespace {

/// splitmix64 finalizer (the same mix Rng::Scramble uses): full-avalanche,
/// so sequential site/key combinations decorrelate.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// FNV-1a over the site name; computed once at Arm time and once per
/// (unarmed-site) lookup miss.
uint64_t HashName(const char* name) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char* c = name; *c != '\0'; ++c) {
    hash ^= static_cast<uint64_t>(static_cast<unsigned char>(*c));
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Uniform double in [0, 1) from 64 raw bits (top 53 bits, like
/// FastRng::NextUniform).
double ToUniform(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultInjector::Arm(const std::string& site, const FaultSpec& spec) {
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].name == site) {
      sites_[i].spec = spec;
      return;
    }
  }
  Site entry;
  entry.name = site;
  entry.name_hash = HashName(site.c_str());
  entry.spec = spec;
  sites_.push_back(std::move(entry));
  counts_.emplace_back(0);
}

const FaultInjector::Site* FaultInjector::Find(const char* site) const {
  // Sites are few (single digits); a linear scan beats hashing the name
  // into a map and keeps the disarmed path allocation-free.
  for (const Site& entry : sites_) {
    if (std::strcmp(entry.name.c_str(), site) == 0) return &entry;
  }
  return nullptr;
}

bool FaultInjector::Decide(const Site& site, uint64_t key) const {
  if (key < static_cast<uint64_t>(site.spec.fail_first)) return true;
  if (site.spec.probability <= 0.0) return false;
  if (site.spec.probability >= 1.0) return true;
  uint64_t bits = Mix(seed_ ^ Mix(site.name_hash ^ Mix(key)));
  return ToUniform(bits) < site.spec.probability;
}

bool FaultInjector::ShouldFail(const char* site, uint64_t key) const {
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (std::strcmp(sites_[i].name.c_str(), site) != 0) continue;
    if (!Decide(sites_[i], key)) return false;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    if (sites_[i].spec.sleep && sites_[i].spec.latency_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          sites_[i].spec.latency_ms));
    }
    return true;
  }
  return false;
}

bool FaultInjector::WouldFail(const char* site, uint64_t key) const {
  const Site* entry = Find(site);
  return entry != nullptr && Decide(*entry, key);
}

Status FaultInjector::MaybeFail(const char* site, uint64_t key) const {
  if (!ShouldFail(site, key)) return Status::OK();
  return Status::Internal(
      StrFormat("injected fault at site '%s' (key %llu)", site,
                static_cast<unsigned long long>(key)));
}

double FaultInjector::LatencyMillis(const char* site) const {
  const Site* entry = Find(site);
  return entry != nullptr ? entry->spec.latency_ms : 0.0;
}

int FaultInjector::Intensity(const char* site) const {
  const Site* entry = Find(site);
  return entry != nullptr ? entry->spec.intensity : 1;
}

uint64_t FaultInjector::HashAt(const char* site, uint64_t key) const {
  const Site* entry = Find(site);
  uint64_t name_hash = entry != nullptr ? entry->name_hash : HashName(site);
  // Distinct stream from Decide's (extra constant) so payload randomness
  // never correlates with firing decisions.
  return Mix(seed_ ^ 0x5bf0363546e35f1dULL ^ Mix(name_hash ^ Mix(key)));
}

int64_t FaultInjector::faults_injected() const {
  int64_t total = 0;
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t FaultInjector::FaultCount(const std::string& site) const {
  for (size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].name == site) {
      return counts_[i].load(std::memory_order_relaxed);
    }
  }
  return 0;
}

std::vector<std::pair<std::string, int64_t>> FaultInjector::Counts() const {
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(sites_.size());
  for (size_t i = 0; i < sites_.size(); ++i) {
    out.emplace_back(sites_[i].name,
                     counts_[i].load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace util
}  // namespace qmqo
