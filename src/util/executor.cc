#include "util/executor.h"

#include <algorithm>
#include <exception>

namespace qmqo {
namespace util {
namespace {

std::atomic<int64_t> g_workers_spawned{0};

}  // namespace

int ResolveNumThreads(int requested) {
  if (requested >= 1) return requested;
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

/// One `ParallelFor` call: a statically chunked index range whose chunks
/// are claimed via an atomic cursor. A batch sits in the executor's queue
/// while unclaimed chunks remain; claiming is separate from completion so
/// the submitter can tell "everything claimed" (stop helping) from
/// "everything finished" (safe to return).
struct Executor::Batch {
  int total = 0;
  int parts = 0;
  int base = 0;
  int remainder = 0;
  const RangeBody* body = nullptr;

  std::atomic<int> next_chunk{0};
  std::mutex mutex;
  std::condition_variable done;
  int remaining = 0;              // guarded by mutex
  std::exception_ptr error;       // guarded by mutex; first error wins

  /// Claims and runs one chunk; false when all chunks are claimed.
  bool RunOneChunk() {
    int chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= parts) return false;
    const int begin = chunk * base + std::min(chunk, remainder);
    const int end = begin + base + (chunk < remainder ? 1 : 0);
    std::exception_ptr caught;
    try {
      (*body)(begin, end, chunk);
    } catch (...) {
      caught = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (caught && !error) error = caught;
      if (--remaining == 0) done.notify_all();
    }
    return true;
  }

  bool AllClaimed() const {
    return next_chunk.load(std::memory_order_relaxed) >= parts;
  }
};

Executor::Executor(int num_threads) {
  const int workers = ResolveNumThreads(num_threads);
  workers_.reserve(static_cast<size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
    g_workers_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int64_t Executor::TotalWorkersSpawned() {
  return g_workers_spawned.load(std::memory_order_relaxed);
}

Executor& Executor::Shared() {
  static Executor shared(0);
  return shared;
}

void Executor::Run(Executor* executor, int total, int parallelism,
                   const RangeBody& body) {
  if (total <= 0) return;
  if (std::min(ResolveNumThreads(parallelism), total) <= 1) {
    body(0, total, 0);
    return;
  }
  (executor != nullptr ? *executor : Shared())
      .ParallelFor(total, parallelism, body);
}

void Executor::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to help
      batch = queue_.front();
      if (batch->AllClaimed()) {
        // Fully claimed batches are done or finishing on other threads;
        // retire the queue entry and look again.
        queue_.pop_front();
        continue;
      }
    }
    batch->RunOneChunk();
  }
}

void Executor::ParallelFor(int total, int parallelism, const RangeBody& body) {
  if (total <= 0) return;
  const int parts = std::min(ResolveNumThreads(parallelism), total);
  if (parts <= 1) {
    body(0, total, 0);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->total = total;
  batch->parts = parts;
  batch->base = total / parts;
  batch->remainder = total % parts;
  batch->body = &body;
  batch->remaining = parts;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(batch);
  }
  wake_.notify_all();
  // Help drain our own chunks; this is what makes nested calls from worker
  // threads deadlock-free (see the header).
  while (batch->RunOneChunk()) {
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->done.wait(lock, [&]() { return batch->remaining == 0; });
    error = batch->error;
  }
  if (error) std::rethrow_exception(error);
}

void Executor::ParallelFor(int total, const std::function<void(int)>& body) {
  ParallelFor(total, num_threads(),
              [&body](int begin, int end, int /*chunk*/) {
                for (int i = begin; i < end; ++i) body(i);
              });
}

}  // namespace util
}  // namespace qmqo
