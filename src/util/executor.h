#ifndef QMQO_UTIL_EXECUTOR_H_
#define QMQO_UTIL_EXECUTOR_H_

/// \file executor.h
/// The single parallelism primitive of the library: a reusable fixed-size
/// worker pool with a condition-variable task queue.
///
/// Every parallel loop in the codebase — the annealers' read engine
/// (`anneal::RunReads`), the device simulator's gauge loop, the experiment
/// harness's instance fan-out, and the bench drivers — runs on an
/// `Executor` instead of spawning `std::thread`s per call. Workers are
/// spawned once, at construction, and reused for every subsequent
/// `ParallelFor`; `TotalWorkersSpawned()` exposes the process-wide spawn
/// counter so tests and benches can assert that hot paths (e.g. one device
/// call per gauge) create zero threads.
///
/// `ParallelFor` partitions `[0, total)` into statically chunked
/// contiguous index ranges (the same base-plus-remainder split for every
/// pool size), enqueues them, and blocks until all chunks finished. The
/// *submitting* thread participates in draining its own chunks, which has
/// two consequences:
///  * nested `ParallelFor` calls issued from inside a worker are
///    deadlock-free — a blocked submitter always has chunks it can run
///    itself, and a claimed chunk is by construction running on some
///    thread;
///  * an executor with N workers serves a `ParallelFor` even when all N
///    workers are busy elsewhere.
/// Exceptions thrown by a chunk are captured and the first one is rethrown
/// on the submitting thread after the batch drains.
///
/// Determinism: chunk boundaries depend only on (total, parallelism), and
/// every call site either writes results into per-index slots or combines
/// per-chunk partials with an order-independent reduction (e.g.
/// `SampleSet::Finalize`), so results are bit-identical for every pool
/// size and thread count.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qmqo {
namespace util {

/// Resolves a requested worker count: values >= 1 pass through, anything
/// else (0 = "auto") becomes the hardware concurrency — which itself falls
/// back to 1 when `std::thread::hardware_concurrency()` reports 0.
int ResolveNumThreads(int requested);

/// Reusable fixed-size worker pool.
class Executor {
 public:
  /// Spawns `ResolveNumThreads(num_threads)` workers (0 = hardware
  /// concurrency). Workers live until destruction.
  explicit Executor(int num_threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Number of worker threads owned by this executor.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Process-wide count of worker threads ever spawned by any `Executor`.
  /// Constant between constructions — the reuse guarantee tests assert on.
  static int64_t TotalWorkersSpawned();

  /// Chunk body: a contiguous index range [begin, end) plus the chunk's
  /// index in [0, parallelism) — callers use it to address per-chunk
  /// accumulators without locking.
  using RangeBody = std::function<void(int begin, int end, int chunk)>;

  /// Runs `body` over `[0, total)` split into
  /// `min(ResolveNumThreads(parallelism), total)` static contiguous
  /// chunks; at most that many chunks execute concurrently regardless of
  /// the pool size. Blocks until every chunk finished; rethrows the first
  /// chunk exception. `parallelism <= 1` (after resolution the chunk count
  /// may still collapse to 1) runs inline on the calling thread.
  void ParallelFor(int total, int parallelism, const RangeBody& body);

  /// Per-index convenience over all workers: `body(i)` for i in [0, total).
  void ParallelFor(int total, const std::function<void(int)>& body);

  /// The lazily-created process-wide pool (hardware-concurrency workers).
  /// Call sites that take an optional `Executor*` fall back to this, so
  /// the whole process shares one set of threads by default.
  static Executor& Shared();

  /// `ParallelFor` on `executor` (null = the shared pool), except that a
  /// resolved parallelism of 1 runs inline without touching any pool — so
  /// serial call paths never construct the shared singleton's workers.
  static void Run(Executor* executor, int total, int parallelism,
                  const RangeBody& body);

 private:
  struct Batch;

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stop_ = false;
};

}  // namespace util
}  // namespace qmqo

#endif  // QMQO_UTIL_EXECUTOR_H_
