#ifndef QMQO_UTIL_STOPWATCH_H_
#define QMQO_UTIL_STOPWATCH_H_

/// \file stopwatch.h
/// Monotonic wall-clock timing for the experiment harness.

#include <chrono>
#include <cstdint>

namespace qmqo {

/// Measures elapsed wall-clock time from construction (or last Restart).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the reference point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in milliseconds (floating point for sub-ms resolution).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qmqo

#endif  // QMQO_UTIL_STOPWATCH_H_
