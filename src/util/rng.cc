#include "util/rng.h"

#include <numeric>

namespace qmqo {

uint64_t Rng::Scramble(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int count) {
  if (count >= n) {
    std::vector<int> all(static_cast<size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  // Partial Fisher-Yates over an index pool.
  std::vector<int> pool(static_cast<size_t>(n));
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<int> picked;
  picked.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    int j = UniformInt(i, n - 1);
    std::swap(pool[static_cast<size_t>(i)], pool[static_cast<size_t>(j)]);
    picked.push_back(pool[static_cast<size_t>(i)]);
  }
  return picked;
}

}  // namespace qmqo
