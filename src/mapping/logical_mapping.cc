#include "mapping/logical_mapping.h"

#include <cassert>
#include <limits>

#include "util/string_util.h"

namespace qmqo {
namespace mapping {

using mqo::MqoProblem;
using mqo::MqoSolution;
using mqo::PlanId;
using mqo::QueryId;

Result<LogicalMapping> LogicalMapping::Create(
    const MqoProblem& problem, const LogicalMappingOptions& options) {
  QMQO_RETURN_IF_ERROR(problem.Validate());
  if (options.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }

  // Weight derivation (Section 4): w_L dominates any single plan cost so
  // that selecting a plan always beats selecting none (Lemma 2); w_M
  // dominates w_L plus any accumulated saving so that dropping a duplicate
  // plan always reduces energy (Lemma 1).
  const double wl = problem.max_plan_cost() + options.epsilon;
  const double wm = wl + problem.max_accumulated_saving() + options.epsilon;

  qubo::QuboProblem qubo(problem.num_plans());
  // E_C + w_L * E_L: linear terms c_p − w_L on every plan variable.
  for (PlanId p = 0; p < problem.num_plans(); ++p) {
    qubo.AddLinear(p, problem.plan_cost(p) - wl);
  }
  // w_M * E_M: quadratic penalty between every pair of plans of one query.
  for (QueryId q = 0; q < problem.num_queries(); ++q) {
    PlanId first = problem.first_plan(q);
    int count = problem.num_plans_of(q);
    for (int i = 0; i < count; ++i) {
      for (int j = i + 1; j < count; ++j) {
        qubo.AddQuadratic(first + i, first + j, wm);
      }
    }
  }
  // E_S: negative quadratic terms for sharing savings.
  for (const mqo::Saving& s : problem.savings()) {
    qubo.AddQuadratic(s.plan_a, s.plan_b, -s.value);
  }
  return LogicalMapping(problem, std::move(qubo), wl, wm);
}

bool LogicalMapping::IsValidAssignment(const std::vector<uint8_t>& x) const {
  if (static_cast<int>(x.size()) != problem_->num_plans()) return false;
  for (QueryId q = 0; q < problem_->num_queries(); ++q) {
    PlanId first = problem_->first_plan(q);
    int selected = 0;
    for (int i = 0; i < problem_->num_plans_of(q); ++i) {
      selected += x[static_cast<size_t>(first + i)] ? 1 : 0;
    }
    if (selected != 1) return false;
  }
  return true;
}

std::vector<uint8_t> LogicalMapping::FromMqoSolution(
    const MqoSolution& solution) const {
  std::vector<uint8_t> x(static_cast<size_t>(problem_->num_plans()), 0);
  for (QueryId q = 0; q < solution.num_queries(); ++q) {
    PlanId p = solution.selected(q);
    if (p != MqoSolution::kUnselected) {
      x[static_cast<size_t>(p)] = 1;
    }
  }
  return x;
}

Result<MqoSolution> LogicalMapping::ToMqoSolution(
    const std::vector<uint8_t>& x) const {
  if (static_cast<int>(x.size()) != problem_->num_plans()) {
    return Status::InvalidArgument(
        StrFormat("assignment has %zu entries, expected %d", x.size(),
                  problem_->num_plans()));
  }
  MqoSolution solution(problem_->num_queries());
  for (QueryId q = 0; q < problem_->num_queries(); ++q) {
    PlanId first = problem_->first_plan(q);
    PlanId chosen = MqoSolution::kUnselected;
    for (int i = 0; i < problem_->num_plans_of(q); ++i) {
      if (!x[static_cast<size_t>(first + i)]) continue;
      if (chosen != MqoSolution::kUnselected) {
        return Status::FailedPrecondition(
            StrFormat("query %d has multiple selected plans", q));
      }
      chosen = first + i;
    }
    if (chosen == MqoSolution::kUnselected) {
      return Status::FailedPrecondition(
          StrFormat("query %d has no selected plan", q));
    }
    solution.Select(q, chosen);
  }
  return solution;
}

MqoSolution LogicalMapping::RepairedSolution(
    const std::vector<uint8_t>& x) const {
  assert(static_cast<int>(x.size()) == problem_->num_plans());
  // Marginal contribution of plan p against the currently-chosen set:
  // c_p minus savings shared with chosen plans of other queries. The
  // chosen set starts as the (possibly invalid) input selection so that
  // an over-full query keeps the plan that profits from what the sample
  // actually selected elsewhere.
  std::vector<uint8_t> chosen(x.begin(), x.end());
  auto marginal = [&](PlanId p) {
    double value = problem_->plan_cost(p);
    for (const auto& [other, saving] : problem_->savings_of(p)) {
      if (chosen[static_cast<size_t>(other)]) value -= saving;
    }
    return value;
  };

  MqoSolution solution(problem_->num_queries());
  // Pass 1: resolve queries that have at least one selected plan; keep the
  // plan with the smallest marginal cost among the selected ones and
  // deselect the rest.
  for (QueryId q = 0; q < problem_->num_queries(); ++q) {
    PlanId first = problem_->first_plan(q);
    PlanId best = MqoSolution::kUnselected;
    double best_value = std::numeric_limits<double>::infinity();
    for (int i = 0; i < problem_->num_plans_of(q); ++i) {
      PlanId p = first + i;
      if (!x[static_cast<size_t>(p)]) continue;
      double value = marginal(p);
      if (value < best_value) {
        best_value = value;
        best = p;
      }
    }
    if (best != MqoSolution::kUnselected) {
      solution.Select(q, best);
      for (int i = 0; i < problem_->num_plans_of(q); ++i) {
        chosen[static_cast<size_t>(first + i)] = 0;
      }
      chosen[static_cast<size_t>(best)] = 1;
    }
  }
  // Pass 2: queries with no selected plan pick the best marginal plan given
  // everything chosen so far.
  for (QueryId q = 0; q < problem_->num_queries(); ++q) {
    if (solution.selected(q) != MqoSolution::kUnselected) continue;
    PlanId first = problem_->first_plan(q);
    PlanId best = first;
    double best_value = std::numeric_limits<double>::infinity();
    for (int i = 0; i < problem_->num_plans_of(q); ++i) {
      PlanId p = first + i;
      double value = marginal(p);
      if (value < best_value) {
        best_value = value;
        best = p;
      }
    }
    solution.Select(q, best);
    chosen[static_cast<size_t>(best)] = 1;
  }
  return solution;
}

}  // namespace mapping
}  // namespace qmqo
