#ifndef QMQO_MAPPING_LOGICAL_MAPPING_H_
#define QMQO_MAPPING_LOGICAL_MAPPING_H_

/// \file logical_mapping.h
/// The paper's core contribution (Section 4): transforming an MQO problem
/// instance into a QUBO "energy formula" whose minimum encodes the optimal
/// plan selection.
///
/// One binary variable X_p per plan p (variable id == plan id). The energy
/// formula is
///
///   E = w_L * E_L + w_M * E_M + E_C + E_S
///
///   E_L = − sum_p X_p                      (select at least one plan/query)
///   E_M = sum_q sum_{p1<p2 in P_q} X_p1 X_p2  (at most one plan/query)
///   E_C = sum_p c_p X_p                    (execution costs)
///   E_S = − sum_{p1,p2} s_{p1,p2} X_p1 X_p2   (sharing savings)
///
/// with weights chosen as small as possible (large weight ranges degrade
/// annealer precision, Section 4):
///
///   w_L = max_p c_p + epsilon
///   w_M = w_L + max_p1 sum_p2 s_{p1,p2} + epsilon
///
/// Theorem 1 of the paper (tested exhaustively in this repo): the minimum of
/// E is attained exactly at valid selections of minimal execution cost, and
/// for every valid assignment E(x) = C(Pe) + constant_offset().

#include <cstdint>
#include <vector>

#include "mqo/problem.h"
#include "mqo/solution.h"
#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace mapping {

/// Tunables of the logical mapping.
struct LogicalMappingOptions {
  /// Slack added above each derived weight lower bound; the paper uses 0.25.
  double epsilon = 0.25;
};

/// The MQO -> QUBO transformation and its inverse.
///
/// Holds a reference to the source problem; the problem must outlive the
/// mapping.
class LogicalMapping {
 public:
  /// Builds the energy formula for `problem`. Fails on invalid problems or
  /// non-positive epsilon.
  static Result<LogicalMapping> Create(
      const mqo::MqoProblem& problem,
      const LogicalMappingOptions& options = LogicalMappingOptions());

  /// The QUBO energy formula. Variable ids coincide with plan ids.
  const qubo::QuboProblem& qubo() const { return qubo_; }

  const mqo::MqoProblem& problem() const { return *problem_; }

  /// The derived weights (useful for diagnostics and tests of Lemmas 1-2).
  double wl() const { return wl_; }
  double wm() const { return wm_; }

  /// For every valid assignment x: qubo().Energy(x) = C(solution(x)) + this.
  /// (E_L contributes −w_L per query and E_M contributes 0.)
  double constant_offset() const {
    return -wl_ * static_cast<double>(problem_->num_queries());
  }

  /// True iff `x` selects exactly one plan per query.
  bool IsValidAssignment(const std::vector<uint8_t>& x) const;

  /// Encodes a complete MQO solution as a QUBO assignment.
  std::vector<uint8_t> FromMqoSolution(const mqo::MqoSolution& solution) const;

  /// Strict inverse mapping: fails when `x` is not a valid assignment.
  Result<mqo::MqoSolution> ToMqoSolution(const std::vector<uint8_t>& x) const;

  /// Total inverse mapping: repairs invalid assignments greedily — a query
  /// with several selected plans keeps the plan with the best marginal
  /// contribution; a query with none gets the plan with the best marginal
  /// contribution w.r.t. plans selected so far. Always returns a valid
  /// solution; coincides with `ToMqoSolution` on valid assignments.
  mqo::MqoSolution RepairedSolution(const std::vector<uint8_t>& x) const;

 private:
  LogicalMapping(const mqo::MqoProblem& problem, qubo::QuboProblem qubo,
                 double wl, double wm)
      : problem_(&problem), qubo_(std::move(qubo)), wl_(wl), wm_(wm) {}

  const mqo::MqoProblem* problem_;
  qubo::QuboProblem qubo_;
  double wl_;
  double wm_;
};

}  // namespace mapping
}  // namespace qmqo

#endif  // QMQO_MAPPING_LOGICAL_MAPPING_H_
