#ifndef QMQO_OBS_METRICS_H_
#define QMQO_OBS_METRICS_H_

/// \file metrics.h
/// The unified metrics surface: named counters, gauges, and fixed-bucket
/// histograms with one deterministic snapshot/exposition path.
///
/// Before this layer each subsystem kept its own ad-hoc counters
/// (`ServiceStats` fields, embedding-cache atomics, fault-site counts,
/// breaker windows). A `MetricsRegistry` replaces that with one surface:
/// components register metrics by name once (cheap pointer handles), hot
/// paths update them lock-free, and `Collect()` produces a snapshot whose
/// exposition (Prometheus text or JSON) is *deterministically ordered* and
/// — given deterministic inputs — byte-identical at any thread count.
///
/// Determinism is a design constraint, not an accident:
///  * **Counters** accumulate int64 across a fixed number of shards
///    (cache-line padded atomics, shard picked per thread). Integer
///    addition is associative and commutative, so the summed snapshot
///    value is independent of which worker incremented which shard.
///  * **Histograms** keep per-shard int64 bucket counts and an int64
///    *fixed-point* sum (1/1000 units). No floating-point accumulation
///    means no dependence on observation order — the bit-identity
///    contract of the rest of the repo extends to the metrics layer.
///  * **Gauges** hold the raw bit pattern of a double (atomic int64).
///    Callers set them on serial paths (the service's admission/commit
///    path), so the last writer is deterministic.
///  * **Snapshots** are sorted by metric name, and all number formatting
///    is locale-independent (integer printf and std::to_chars, never
///    LC_NUMERIC-sensitive %g/%f) — equal bits in, equal bytes out.
///
/// Metric names follow Prometheus conventions (`qmqo_<area>_<what>_<unit>`)
/// and may carry a literal label suffix (`name{key="value"}`); the
/// exposition groups HELP/TYPE lines by base name. Registration is
/// get-or-create and thread-safe; re-registering a name with a different
/// kind returns nullptr (a programming error surfaced in tests, never a
/// crash in release paths — callers own their names).
///
/// Subsystems that keep private counters for layering reasons (embedding
/// cache, fault injector, circuit breakers) are mirrored onto the registry
/// through *collectors*: callbacks run at the start of every `Collect()`
/// on the snapshotting thread, so there is still exactly one snapshot
/// surface (see SolveService, which registers collectors for all three).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qmqo {
namespace obs {

/// Shards per metric: enough to keep 4-8 workers off each other's cache
/// lines without bloating snapshots (sharding changes contention, never
/// values).
inline constexpr int kMetricShards = 8;

namespace internal {
/// One cache line per shard so concurrent increments never false-share.
struct alignas(64) PaddedAtomic {
  std::atomic<int64_t> value{0};
};
/// Stable per-thread shard index in [0, kMetricShards).
int ThisThreadShard();
}  // namespace internal

/// Monotonically increasing int64, sharded for contention-free updates.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    shards_[internal::ThisThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Raises the counter to `absolute` (a no-op when it is already
  /// there). For collectors that mirror a monotonic source kept outside
  /// the registry (fault-injector firings, breaker admissions, cache
  /// hits): the mirror stays a *counter* in the exposition — TYPE gauge
  /// on an ever-increasing `_total` series breaks rate()/increase() on
  /// scrapers — while the collector still sets an absolute value. Only
  /// meaningful on a serial path (Collect() runs collectors serially);
  /// the source must never decrease.
  void SetToAbsolute(int64_t absolute) {
    int64_t delta = absolute - Value();
    if (delta > 0) Increment(delta);
  }

  /// Sum over all shards (exact: integer addition).
  int64_t Value() const {
    int64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  internal::PaddedAtomic shards_[kMetricShards];
};

/// A settable double (stored as raw bits, so reads round-trip exactly).
/// Set it on a serial path when the snapshot must be deterministic.
class Gauge {
 public:
  void Set(double value) {
    int64_t bits;
    static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
    __builtin_memcpy(&bits, &value, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }

  double Value() const {
    int64_t bits = bits_.load(std::memory_order_relaxed);
    double value;
    __builtin_memcpy(&value, &bits, sizeof(value));
    return value;
  }

 private:
  std::atomic<int64_t> bits_{0};
};

/// Fixed-bucket histogram. Bucket upper bounds are inclusive (Prometheus
/// `le` semantics); an implicit +Inf bucket catches the rest. The sum is
/// accumulated in fixed-point 1/1000 units (microseconds for millisecond
/// observations), so snapshots are bit-identical regardless of the order —
/// or thread — of observations.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);

  /// Observations so far (exact).
  int64_t Count() const;
  /// Sum of observed values, quantized to 1/1000 units.
  double Sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (bucket bounds_.size() = +Inf).
  int64_t BucketCount(size_t i) const;

 private:
  std::vector<double> bounds_;  // strictly increasing upper bounds
  /// shard-major: shard s, bucket b at [s * (bounds+1) + b]. Heap array
  /// rather than vector: atomics are neither copyable nor movable.
  std::unique_ptr<internal::PaddedAtomic[]> buckets_;
  internal::PaddedAtomic counts_[kMetricShards];
  internal::PaddedAtomic sum_thousandths_[kMetricShards];
};

/// One metric's state at snapshot time.
struct MetricPoint {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;  ///< full name, possibly with a {label} suffix
  std::string help;
  Kind kind = Kind::kCounter;
  int64_t counter_value = 0;
  double gauge_value = 0.0;
  /// Histogram payload: per-bucket non-cumulative counts, aligned with
  /// `bounds` plus one trailing +Inf bucket.
  std::vector<double> bounds;
  std::vector<int64_t> bucket_counts;
  int64_t count = 0;
  double sum = 0.0;
};

/// A deterministically ordered (name-sorted) snapshot with exposition.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// Prometheus text exposition format (HELP/TYPE grouped by base name,
  /// histogram buckets as cumulative `_bucket{le="..."}` series).
  std::string PrometheusText() const;
  /// One flat JSON object: {"name": value, ...}; histograms expand to
  /// name.count / name.sum / name.bucket entries.
  std::string JsonText() const;
};

/// The registry. Registration is mutexed; returned handles are stable for
/// the registry's lifetime and update lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Returns nullptr when `name` already exists as a
  /// different kind (and, for histograms, never re-buckets an existing
  /// one).
  Counter* counter(const std::string& name, const std::string& help = "");
  Gauge* gauge(const std::string& name, const std::string& help = "");
  Histogram* histogram(const std::string& name,
                       std::vector<double> upper_bounds,
                       const std::string& help = "");

  /// Registers a callback run (serially, on the calling thread) at the
  /// start of every Collect() — the bridge for subsystems that keep their
  /// own counters (cache stats, fault counts, breaker state).
  void AddCollector(std::function<void(MetricsRegistry*)> collector);

  /// Runs collectors, then snapshots every metric sorted by name.
  MetricsSnapshot Collect();

  /// Convenience: Collect() rendered as Prometheus text / JSON.
  std::string PrometheusText() { return Collect().PrometheusText(); }
  std::string JsonText() { return Collect().JsonText(); }

 private:
  struct Entry {
    MetricPoint::Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  /// std::map: node stability for handles + name-sorted iteration for
  /// deterministic snapshots.
  std::map<std::string, Entry> entries_;
  std::vector<std::function<void(MetricsRegistry*)>> collectors_;
};

/// Default latency buckets for modeled/wall millisecond histograms:
/// 0.1 ms to 10 s in a 1-2.5-5 progression.
std::vector<double> DefaultLatencyBucketsMs();

}  // namespace obs
}  // namespace qmqo

#endif  // QMQO_OBS_METRICS_H_
