#include "obs/trace.h"

#include <cmath>

#include "util/stopwatch.h"
#include "util/string_util.h"

namespace qmqo {
namespace obs {

/// Built from integer pieces only — `%f` honors LC_NUMERIC, and an
/// embedding app that calls setlocale() must not change trace bytes.
std::string FormatMs(double ms) {
  int64_t thousandths = static_cast<int64_t>(std::llround(ms * 1000.0));
  const char* sign = thousandths < 0 ? "-" : "";
  if (thousandths < 0) thousandths = -thousandths;
  if (thousandths % 1000 == 0) {
    return StrFormat("%s%lld", sign,
                     static_cast<long long>(thousandths / 1000));
  }
  std::string out =
      StrFormat("%s%lld.%03lld", sign,
                static_cast<long long>(thousandths / 1000),
                static_cast<long long>(thousandths % 1000));
  while (out.back() == '0') out.pop_back();
  return out;
}

int SolveTrace::Open(const std::string& name) {
  Span span;
  span.name = name;
  span.parent = open_.empty() ? -1 : open_.back();
  span.depth = open_.empty() ? 0 : spans_[open_.back()].depth + 1;
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(index);
  return index;
}

void SolveTrace::Close(double wall_ms) {
  if (open_.empty()) return;
  spans_[open_.back()].wall_ms = wall_ms;
  open_.pop_back();
}

void SolveTrace::AddModeled(double modeled_ms) {
  if (open_.empty()) return;
  spans_[open_.back()].modeled_ms += modeled_ms;
}

void SolveTrace::Tag(const std::string& key, const std::string& value) {
  if (open_.empty()) return;
  spans_[open_.back()].tags.emplace_back(key, value);
}

void SolveTrace::Tag(const std::string& key, int64_t value) {
  Tag(key, StrFormat("%lld", static_cast<long long>(value)));
}

void SolveTrace::TagAt(int index, const std::string& key,
                       const std::string& value) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  spans_[index].tags.emplace_back(key, value);
}

void SolveTrace::TagAt(int index, const std::string& key, int64_t value) {
  TagAt(index, key, StrFormat("%lld", static_cast<long long>(value)));
}

void SolveTrace::AddModeledAt(int index, double modeled_ms) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  spans_[index].modeled_ms += modeled_ms;
}

void SolveTrace::SetWallAt(int index, double wall_ms) {
  if (index < 0 || index >= static_cast<int>(spans_.size())) return;
  spans_[index].wall_ms = wall_ms;
}

double SolveTrace::ModeledTotal(const std::string& name) const {
  double total = 0.0;
  for (const Span& span : spans_) {
    if (span.name == name) total += span.modeled_ms;
  }
  return total;
}

double SolveTrace::WallTotal(const std::string& name) const {
  double total = 0.0;
  for (const Span& span : spans_) {
    if (span.name == name) total += span.wall_ms;
  }
  return total;
}

std::string SolveTrace::JsonLine(bool include_wall) const {
  std::string out = "{\"spans\": [";
  for (size_t i = 0; i < spans_.size(); ++i) {
    const Span& span = spans_[i];
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + EscapeJson(span.name) + "\"";
    out += ", \"parent\": " + StrFormat("%d", span.parent);
    out += ", \"modeled_ms\": " + FormatMs(span.modeled_ms);
    if (include_wall) {
      out += ", \"wall_ms\": " + FormatMs(span.wall_ms);
    }
    if (!span.tags.empty()) {
      out += ", \"tags\": {";
      for (size_t t = 0; t < span.tags.size(); ++t) {
        if (t > 0) out += ", ";
        out += "\"" + EscapeJson(span.tags[t].first) + "\": \"" +
               EscapeJson(span.tags[t].second) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string SolveTrace::Pretty(bool include_wall) const {
  std::string out;
  for (const Span& span : spans_) {
    out.append(static_cast<size_t>(span.depth) * 2, ' ');
    out += span.name;
    out += "  modeled=" + FormatMs(span.modeled_ms) + "ms";
    if (include_wall) {
      out += " wall=" + FormatMs(span.wall_ms) + "ms";
    }
    for (const auto& [key, value] : span.tags) {
      out += " " + key + "=" + value;
    }
    out += "\n";
  }
  return out;
}

SpanScope::SpanScope(SolveTrace* trace, const std::string& name)
    : trace_(trace) {
  if (trace_ == nullptr) return;
  index_ = trace_->Open(name);
  stopwatch_.Restart();
}

SpanScope::~SpanScope() {
  if (trace_ == nullptr) return;
  trace_->Close(stopwatch_.ElapsedMillis());
}

void Tracer::Commit(SolveTrace trace) { traces_.push_back(std::move(trace)); }

std::string Tracer::DumpJsonLines(bool include_wall) const {
  std::string out;
  for (const SolveTrace& trace : traces_) {
    out += trace.JsonLine(include_wall);
    out += "\n";
  }
  return out;
}

double Tracer::ModeledTotal(const std::string& name) const {
  double total = 0.0;
  for (const SolveTrace& trace : traces_) total += trace.ModeledTotal(name);
  return total;
}

double Tracer::WallTotal(const std::string& name) const {
  double total = 0.0;
  for (const SolveTrace& trace : traces_) total += trace.WallTotal(name);
  return total;
}

}  // namespace obs
}  // namespace qmqo
