#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <utility>

#include "util/string_util.h"

namespace qmqo {
namespace obs {
namespace internal {

int ThisThreadShard() {
  // One fetch_add per thread lifetime; threads round-robin over shards so
  // a pool of <= kMetricShards workers never shares a shard.
  static std::atomic<int> next_shard{0};
  thread_local int shard =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

namespace {

/// Deterministic, locale-independent number rendering: a pure function of
/// the value's bits. Integral values print as integers ("25"), others via
/// std::to_chars shortest-round-trip ("0.1", "36.5"). to_chars is defined
/// to ignore the C locale — printf's %g and strtod honor LC_NUMERIC, and
/// an embedding app that calls setlocale() must not be able to turn the
/// exposition into "36,5".
std::string FormatDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  double integral;
  if (std::modf(value, &integral) == 0.0 && std::fabs(value) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  char buf[64];
  std::to_chars_result result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

/// Name up to the label suffix: "x_total{a=\"b\"}" -> "x_total".
std::string BaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splices an extra label into a possibly-labeled name:
/// ("x{a=\"b\"}", "le=\"5\"") -> "x{a=\"b\",le=\"5\"}".
std::string WithLabel(const std::string& name, const std::string& label) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return name + "{" + label + "}";
  std::string out = name;
  out.insert(out.size() - 1, "," + label);
  return out;
}

/// Inserts a series suffix before any label block:
/// ("x{a=\"b\"}", "_sum") -> "x_sum{a=\"b\"}".
std::string WithSuffix(const std::string& name, const std::string& suffix) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

const char* KindName(MetricPoint::Kind kind) {
  switch (kind) {
    case MetricPoint::Kind::kCounter:
      return "counter";
    case MetricPoint::Kind::kGauge:
      return "gauge";
    case MetricPoint::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<internal::PaddedAtomic[]>(
      static_cast<size_t>(kMetricShards) * (bounds_.size() + 1));
}

void Histogram::Observe(double value) {
  // First bound >= value: inclusive upper bounds (Prometheus `le`).
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  const int shard = internal::ThisThreadShard();
  buckets_[static_cast<size_t>(shard) * (bounds_.size() + 1) + bucket]
      .value.fetch_add(1, std::memory_order_relaxed);
  counts_[shard].value.fetch_add(1, std::memory_order_relaxed);
  // Fixed-point accumulation: integer adds are order-independent, so the
  // snapshot sum is bit-identical at any thread count.
  sum_thousandths_[shard].value.fetch_add(
      static_cast<int64_t>(std::llround(value * 1000.0)),
      std::memory_order_relaxed);
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const auto& shard : counts_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  int64_t total = 0;
  for (const auto& shard : sum_thousandths_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return static_cast<double>(total) / 1000.0;
}

int64_t Histogram::BucketCount(size_t i) const {
  int64_t total = 0;
  for (int shard = 0; shard < kMetricShards; ++shard) {
    total += buckets_[static_cast<size_t>(shard) * (bounds_.size() + 1) + i]
                 .value.load(std::memory_order_relaxed);
  }
  return total;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == MetricPoint::Kind::kCounter
               ? it->second.counter.get()
               : nullptr;
  }
  Entry entry;
  entry.kind = MetricPoint::Kind::kCounter;
  entry.help = help;
  entry.counter = std::make_unique<Counter>();
  return entries_.emplace(name, std::move(entry))
      .first->second.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == MetricPoint::Kind::kGauge
               ? it->second.gauge.get()
               : nullptr;
  }
  Entry entry;
  entry.kind = MetricPoint::Kind::kGauge;
  entry.help = help;
  entry.gauge = std::make_unique<Gauge>();
  return entries_.emplace(name, std::move(entry)).first->second.gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    return it->second.kind == MetricPoint::Kind::kHistogram
               ? it->second.histogram.get()
               : nullptr;
  }
  Entry entry;
  entry.kind = MetricPoint::Kind::kHistogram;
  entry.help = help;
  entry.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return entries_.emplace(name, std::move(entry))
      .first->second.histogram.get();
}

void MetricsRegistry::AddCollector(
    std::function<void(MetricsRegistry*)> collector) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collector));
}

MetricsSnapshot MetricsRegistry::Collect() {
  // Collectors run outside the lock (they call counter()/gauge(), which
  // locks), serially on this thread, in registration order.
  std::vector<std::function<void(MetricsRegistry*)>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
  }
  for (auto& collector : collectors) collector(this);

  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.points.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {  // std::map: name-sorted
    MetricPoint point;
    point.name = name;
    point.help = entry.help;
    point.kind = entry.kind;
    switch (entry.kind) {
      case MetricPoint::Kind::kCounter:
        point.counter_value = entry.counter->Value();
        break;
      case MetricPoint::Kind::kGauge:
        point.gauge_value = entry.gauge->Value();
        break;
      case MetricPoint::Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        point.bounds = h.bounds();
        point.bucket_counts.resize(h.bounds().size() + 1);
        for (size_t b = 0; b <= h.bounds().size(); ++b) {
          point.bucket_counts[b] = h.BucketCount(b);
        }
        point.count = h.Count();
        point.sum = h.Sum();
        break;
      }
    }
    snapshot.points.push_back(std::move(point));
  }
  return snapshot;
}

std::string MetricsSnapshot::PrometheusText() const {
  // Group points by base name before rendering: name-sort interleaves a
  // family's unlabeled and labeled series around metrics that sort
  // between them ('{' > '_', so base_x lands between `base` and
  // `base{...}`), and emitting headers by adjacency would then declare
  // duplicate # TYPE lines — which Prometheus parsers reject. Families
  // render in first-appearance (i.e. name-sorted) order, each exactly
  // once.
  std::vector<std::pair<std::string, std::vector<const MetricPoint*>>>
      families;
  std::map<std::string, size_t> family_index;
  for (const MetricPoint& point : points) {
    std::string base = BaseName(point.name);
    auto [it, inserted] = family_index.emplace(base, families.size());
    if (inserted) families.emplace_back(std::move(base),
                                        std::vector<const MetricPoint*>());
    families[it->second].second.push_back(&point);
  }
  std::string out;
  for (const auto& [base, family] : families) {
    // HELP text may be attached to any one point of a labeled family
    // (registration order is the caller's business); the family's first
    // non-empty help wins.
    for (const MetricPoint* member : family) {
      if (member->help.empty()) continue;
      out += "# HELP " + base + " " + member->help + "\n";
      break;
    }
    out += "# TYPE " + base + " " + KindName(family.front()->kind) + "\n";
    for (const MetricPoint* member : family) {
      const MetricPoint& point = *member;
      switch (point.kind) {
        case MetricPoint::Kind::kCounter:
          out += point.name + " " +
                 StrFormat("%lld",
                           static_cast<long long>(point.counter_value)) +
                 "\n";
          break;
        case MetricPoint::Kind::kGauge:
          out += point.name + " " + FormatDouble(point.gauge_value) + "\n";
          break;
        case MetricPoint::Kind::kHistogram: {
          int64_t cumulative = 0;
          for (size_t b = 0; b < point.bucket_counts.size(); ++b) {
            cumulative += point.bucket_counts[b];
            const std::string le = b < point.bounds.size()
                                       ? FormatDouble(point.bounds[b])
                                       : "+Inf";
            out += WithLabel(WithSuffix(point.name, "_bucket"),
                             "le=\"" + le + "\"") +
                   " " +
                   StrFormat("%lld", static_cast<long long>(cumulative)) +
                   "\n";
          }
          out += WithSuffix(point.name, "_sum") + " " +
                 FormatDouble(point.sum) + "\n";
          out += WithSuffix(point.name, "_count") + " " +
                 StrFormat("%lld", static_cast<long long>(point.count)) +
                 "\n";
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::JsonText() const {
  std::string out = "{";
  bool first = true;
  // Keys are full metric names, label block included — those carry
  // literal double quotes (`x_total{reason="invalid"}`), so they must be
  // escaped or the whole document is invalid JSON.
  auto add = [&](const std::string& key, const std::string& value) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + EscapeJson(key) + "\": " + value;
  };
  for (const MetricPoint& point : points) {
    switch (point.kind) {
      case MetricPoint::Kind::kCounter:
        add(point.name,
            StrFormat("%lld", static_cast<long long>(point.counter_value)));
        break;
      case MetricPoint::Kind::kGauge: {
        const double v = point.gauge_value;
        add(point.name, std::isfinite(v) ? FormatDouble(v) : "null");
        break;
      }
      case MetricPoint::Kind::kHistogram: {
        std::string hist = "{\"buckets\": [";
        int64_t cumulative = 0;
        for (size_t b = 0; b < point.bucket_counts.size(); ++b) {
          cumulative += point.bucket_counts[b];
          if (b > 0) hist += ", ";
          const std::string le =
              b < point.bounds.size() ? FormatDouble(point.bounds[b]) : "inf";
          hist += "{\"le\": \"" + le + "\", \"count\": " +
                  StrFormat("%lld", static_cast<long long>(cumulative)) + "}";
        }
        hist += "], \"sum\": " + FormatDouble(point.sum) + ", \"count\": " +
                StrFormat("%lld", static_cast<long long>(point.count)) + "}";
        add(point.name, hist);
        break;
      }
    }
  }
  out += "}";
  return out;
}

std::vector<double> DefaultLatencyBucketsMs() {
  return {0.1, 0.25, 0.5, 1.0,   2.5,   5.0,   10.0,  25.0,
          50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
}

}  // namespace obs
}  // namespace qmqo
