#ifndef QMQO_OBS_TRACE_H_
#define QMQO_OBS_TRACE_H_

/// \file trace.h
/// Per-request solve traces: span trees recording where time goes inside a
/// solve — embed / anneal (per gauge) / unembed / merge in the pipeline,
/// one span per ladder attempt in the resilient solver, and queue-wait /
/// admission / round bookkeeping in the service.
///
/// Every span carries *two* durations:
///  * **modeled_ms** — the repo's deterministic modeled clock
///    (`util::Deadline` charges): pure in (seed, inputs), bit-identical at
///    any worker-thread count. This is what determinism tests compare.
///  * **wall_ms** — real elapsed time from `Stopwatch`, inherently
///    nondeterministic. Exporters take an `include_wall` flag so trace
///    dumps can be byte-compared with wall times stripped.
///
/// Concurrency follows the service's round discipline: each request's
/// `SolveTrace` is built by exactly one worker (per-index slot), then
/// committed to the shared `Tracer` serially in slot order. The Tracer
/// itself is therefore single-threaded by contract and unsynchronized.
///
/// Span taxonomy (stable names — tests and bench parse them):
///   service.request   root; tags: request id, verdict, round, queue-wait
///   solve.attempt     one per ladder attempt; tags: rung, backend,
///                     attempt, status, backoff_ms, faults
///   pipeline.embed    embedding (tag cache_hit=0/1)
///   pipeline.anneal   device/SQA sampling; children: anneal.gauge
///   anneal.gauge      one per gauge transform; tags: reads, dropped
///   pipeline.unembed  chain unembedding + repair over all reads
///   pipeline.merge    per-read evaluation, swap descent, SampleSet merge

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/stopwatch.h"

namespace qmqo {
namespace obs {

/// Deterministic, locale-independent millisecond rendering quantized to
/// 1/1000 (the fixed-point resolution of the metrics layer): "12.345",
/// "0.5", "25". Every trace duration and millisecond tag value must go
/// through this — printf %f honors LC_NUMERIC, and an embedding app that
/// calls setlocale() must not be able to corrupt trace JSON.
std::string FormatMs(double ms);

/// One node of a span tree. Stored flat in SolveTrace::spans with parent
/// indices; children appear after their parent in depth-first order.
struct Span {
  std::string name;
  int parent = -1;  ///< index into SolveTrace::spans, -1 for the root
  int depth = 0;
  double modeled_ms = 0.0;  ///< deterministic modeled-clock duration
  double wall_ms = 0.0;     ///< nondeterministic wall-clock duration
  /// Ordered key=value annotations (ints/strings rendered by the caller);
  /// order is append order, deterministic for deterministic callers.
  std::vector<std::pair<std::string, std::string>> tags;
};

/// A single request's span tree. Built by one thread; no synchronization.
class SolveTrace {
 public:
  /// Opens a child of the innermost open span (or the root). Returns the
  /// span index for use with Close/TagAt.
  int Open(const std::string& name);

  /// Closes the innermost open span, recording its wall duration.
  /// Modeled time is charged separately via AddModeled (the modeled clock
  /// has no "now" to subtract — callers know the charge exactly).
  void Close(double wall_ms);

  /// Adds modeled milliseconds to the innermost open span.
  void AddModeled(double modeled_ms);

  /// Appends a tag to the innermost open span.
  void Tag(const std::string& key, const std::string& value);
  void Tag(const std::string& key, int64_t value);

  /// Tag a specific span (open or closed) by index.
  void TagAt(int index, const std::string& key, const std::string& value);
  void TagAt(int index, const std::string& key, int64_t value);

  /// Adds modeled milliseconds to a specific span by index.
  void AddModeledAt(int index, double modeled_ms);
  /// Sets the wall duration of a specific span by index.
  void SetWallAt(int index, double wall_ms);

  bool has_open_span() const { return !open_.empty(); }
  const std::vector<Span>& spans() const { return spans_; }
  std::vector<Span>& mutable_spans() { return spans_; }

  /// Sum of modeled_ms over spans with this exact name.
  double ModeledTotal(const std::string& name) const;
  /// Sum of wall_ms over spans with this exact name.
  double WallTotal(const std::string& name) const;

  /// One JSON object (single line): {"spans": [...]}. With
  /// include_wall=false, wall_ms fields are omitted and the output is
  /// deterministic for deterministic inputs.
  std::string JsonLine(bool include_wall) const;

  /// Indented tree rendering for humans; modeled always shown, wall when
  /// include_wall. Fault/verdict tags render inline.
  std::string Pretty(bool include_wall) const;

 private:
  std::vector<Span> spans_;
  std::vector<int> open_;  ///< stack of indices of open spans
};

/// RAII helper: opens a span on construction, closes it (with wall time)
/// on destruction. Null-safe — with trace == nullptr every method is a
/// no-op, so instrumented code costs nothing when tracing is off.
class SpanScope {
 public:
  SpanScope(SolveTrace* trace, const std::string& name);
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope();

  void AddModeled(double modeled_ms) {
    if (trace_ != nullptr) trace_->AddModeled(modeled_ms);
  }
  void Tag(const std::string& key, const std::string& value) {
    if (trace_ != nullptr) trace_->Tag(key, value);
  }
  void Tag(const std::string& key, int64_t value) {
    if (trace_ != nullptr) trace_->Tag(key, value);
  }

 private:
  SolveTrace* trace_;
  int index_ = -1;
  Stopwatch stopwatch_;
};

/// Collects completed traces. Single-threaded by contract: the service
/// commits per-slot traces serially in slot order (the same discipline
/// that makes outcome callbacks deterministic), benches commit from their
/// driver loop.
class Tracer {
 public:
  /// Takes ownership of a finished trace.
  void Commit(SolveTrace trace);

  const std::vector<SolveTrace>& traces() const { return traces_; }
  size_t size() const { return traces_.size(); }
  void Clear() { traces_.clear(); }

  /// JSON-lines dump: one JSON object per committed trace, in commit
  /// order. Deterministic when include_wall=false.
  std::string DumpJsonLines(bool include_wall) const;

  /// Sum of modeled_ms over spans with `name` across all traces.
  double ModeledTotal(const std::string& name) const;
  /// Sum of wall_ms over spans with `name` across all traces.
  double WallTotal(const std::string& name) const;

 private:
  std::vector<SolveTrace> traces_;
};

}  // namespace obs
}  // namespace qmqo

#endif  // QMQO_OBS_TRACE_H_
