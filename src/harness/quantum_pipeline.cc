#include "harness/quantum_pipeline.h"

#include <limits>
#include <utility>

#include "util/fault.h"
#include "util/stopwatch.h"

namespace qmqo {
namespace harness {

Result<QuantumMqoResult> SolveQuantumMqo(const mqo::MqoProblem& problem,
                                         const embedding::Embedding& embedding,
                                         const chimera::ChimeraGraph& graph,
                                         const QuantumMqoOptions& options) {
  QuantumMqoResult result;
  if (options.faults != nullptr) {
    QMQO_RETURN_IF_ERROR(
        options.faults->MaybeFail("pipeline.solve", options.fault_attempt));
  }

  // Preprocessing on the "classical computer": logical + physical mapping.
  Stopwatch preprocessing;
  QMQO_ASSIGN_OR_RETURN(
      mapping::LogicalMapping logical,
      mapping::LogicalMapping::Create(problem, options.logical));
  embedding::EmbeddedQuboOptions physical_options = options.physical;
  if (options.faults != nullptr && physical_options.faults == nullptr) {
    physical_options.faults = options.faults;
    physical_options.fault_key = options.fault_attempt;
  }
  Result<embedding::EmbeddedQubo> compiled =
      options.embedding_cache != nullptr
          ? options.embedding_cache->GetOrCreate(logical.qubo(), embedding,
                                                 graph, physical_options,
                                                 &result.embedding_cache_hit)
          : embedding::EmbeddedQubo::Create(logical.qubo(), embedding, graph,
                                            physical_options);
  QMQO_RETURN_IF_ERROR(compiled.status());
  embedding::EmbeddedQubo physical = std::move(compiled).value();
  result.preprocessing_ms = preprocessing.ElapsedMillis();
  result.physical_qubits = physical.num_physical_vars();

  // Annealing on the (simulated) device, with chronological reads.
  anneal::DWaveOptions device_options = options.device;
  device_options.record_reads = true;
  if (options.faults != nullptr && device_options.faults == nullptr) {
    device_options.faults = options.faults;
    device_options.fault_epoch = options.fault_attempt;
  }
  anneal::DWaveSimulator device(device_options);
  QMQO_ASSIGN_OR_RETURN(anneal::DeviceResult device_result,
                        device.Sample(physical.physical()));
  result.device_time_us = device_result.device_time_us;
  result.simulator_wall_ms = device_result.wall_clock_ms;
  result.faults_injected = device_result.faults_injected;
  result.dropped_reads = device_result.dropped_reads;
  result.injected_latency_ms = device_result.injected_latency_ms;

  // Read-out: unembed each read in order, repair to a valid selection,
  // track the best cost on the modeled device-time axis.
  const double per_read_us =
      device_options.anneal_time_us + device_options.readout_time_us;
  double best_cost = std::numeric_limits<double>::infinity();
  double broken_chain_sum = 0.0;
  int valid_reads = 0;
  int read_index = 0;
  // Reads come back bit-packed; unpack each into one reused byte buffer.
  std::vector<uint8_t> physical_read;
  for (anneal::AssignmentRef packed_read : device_result.raw_reads) {
    packed_read.CopyBytesTo(&physical_read);
    ++read_index;
    broken_chain_sum += physical.BrokenChainFraction(physical_read);
    std::vector<uint8_t> logical_read = physical.Unembed(physical_read);
    if (logical.IsValidAssignment(logical_read)) ++valid_reads;
    mqo::MqoSolution solution = logical.RepairedSolution(logical_read);
    if (options.postprocess_swap_descent) {
      mqo::SwapDescent(problem, &solution);
    }
    double cost = mqo::EvaluateCost(problem, solution);
    if (read_index == 1) result.first_read_cost = cost;
    if (cost < best_cost) {
      best_cost = cost;
      result.best_solution = solution;
      result.cost_vs_device_time.Record(
          static_cast<double>(read_index) * per_read_us / 1000.0, cost);
    }
  }
  result.best_cost = best_cost;
  int total_reads = device_result.raw_reads.size();
  if (total_reads > 0) {
    result.broken_chain_read_fraction = broken_chain_sum / total_reads;
    result.valid_read_fraction =
        static_cast<double>(valid_reads) / total_reads;
  }
  return result;
}

}  // namespace harness
}  // namespace qmqo
