#include "harness/quantum_pipeline.h"

#include <limits>
#include <utility>

#include "util/fault.h"
#include "util/stopwatch.h"

namespace qmqo {
namespace harness {

namespace {

/// Closes the trace's innermost span with an error tag — used on every
/// early-return path so a failing stage never leaks an open span into the
/// caller's tree (ResilientSolver reuses one trace across attempts).
void CloseSpanWithError(obs::SolveTrace* trace, double wall_ms) {
  if (trace == nullptr) return;
  trace->Tag("status", "error");
  trace->Close(wall_ms);
}

}  // namespace

Result<QuantumMqoResult> SolveQuantumMqo(const mqo::MqoProblem& problem,
                                         const embedding::Embedding& embedding,
                                         const chimera::ChimeraGraph& graph,
                                         const QuantumMqoOptions& options) {
  QuantumMqoResult result;
  if (options.faults != nullptr) {
    QMQO_RETURN_IF_ERROR(
        options.faults->MaybeFail("pipeline.solve", options.fault_attempt));
  }
  obs::SolveTrace* trace = options.trace;

  // Preprocessing on the "classical computer": logical + physical mapping.
  // The embed span is all wall time: classical preprocessing is never
  // charged to the modeled device clock (the paper's accounting).
  Stopwatch preprocessing;
  if (trace != nullptr) trace->Open("pipeline.embed");
  Result<mapping::LogicalMapping> logical_result =
      mapping::LogicalMapping::Create(problem, options.logical);
  if (!logical_result.ok()) {
    CloseSpanWithError(trace, preprocessing.ElapsedMillis());
    return logical_result.status();
  }
  mapping::LogicalMapping logical = std::move(logical_result).value();
  embedding::EmbeddedQuboOptions physical_options = options.physical;
  if (options.faults != nullptr && physical_options.faults == nullptr) {
    physical_options.faults = options.faults;
    physical_options.fault_key = options.fault_attempt;
  }
  Result<embedding::EmbeddedQubo> compiled =
      options.embedding_cache != nullptr
          ? options.embedding_cache->GetOrCreate(logical.qubo(), embedding,
                                                 graph, physical_options,
                                                 &result.embedding_cache_hit)
          : embedding::EmbeddedQubo::Create(logical.qubo(), embedding, graph,
                                            physical_options);
  if (!compiled.ok()) {
    CloseSpanWithError(trace, preprocessing.ElapsedMillis());
    return compiled.status();
  }
  embedding::EmbeddedQubo physical = std::move(compiled).value();
  result.preprocessing_ms = preprocessing.ElapsedMillis();
  result.physical_qubits = physical.num_physical_vars();
  if (trace != nullptr) {
    trace->Tag("cache_hit",
               static_cast<int64_t>(result.embedding_cache_hit ? 1 : 0));
    trace->Close(result.preprocessing_ms);
  }

  // Annealing on the (simulated) device, with chronological reads.
  anneal::DWaveOptions device_options = options.device;
  device_options.record_reads = true;
  if (options.faults != nullptr && device_options.faults == nullptr) {
    device_options.faults = options.faults;
    device_options.fault_epoch = options.fault_attempt;
  }
  const double per_read_us =
      device_options.anneal_time_us + device_options.readout_time_us;
  Stopwatch anneal_wall;
  if (trace != nullptr) trace->Open("pipeline.anneal");
  anneal::DWaveSimulator device(device_options);
  Result<anneal::DeviceResult> sampled = device.Sample(physical.physical());
  if (!sampled.ok()) {
    CloseSpanWithError(trace, anneal_wall.ElapsedMillis());
    return sampled.status();
  }
  anneal::DeviceResult device_result = std::move(sampled).value();
  result.device_time_us = device_result.device_time_us;
  result.simulator_wall_ms = device_result.wall_clock_ms;
  result.faults_injected = device_result.faults_injected;
  result.dropped_reads = device_result.dropped_reads;
  result.injected_latency_ms = device_result.injected_latency_ms;
  if (trace != nullptr) {
    // One child per programming cycle, from the device's serially recorded
    // per-gauge timings; modeled time is the device-time model plus any
    // injected latency (both deterministic).
    for (const anneal::GaugeTiming& timing : device_result.gauge_timings) {
      trace->Open("anneal.gauge");
      trace->Tag("gauge", static_cast<int64_t>(timing.gauge));
      trace->Tag("reads", static_cast<int64_t>(timing.reads));
      if (timing.dropped_reads > 0) {
        trace->Tag("dropped", static_cast<int64_t>(timing.dropped_reads));
      }
      trace->AddModeled(static_cast<double>(timing.reads) * per_read_us /
                            1000.0 +
                        timing.injected_latency_ms);
      trace->Close(timing.wall_ms);
    }
    trace->AddModeled(device_result.device_time_us / 1000.0 +
                      device_result.injected_latency_ms);
    trace->Tag("faults", device_result.faults_injected);
    if (device_result.dropped_reads > 0) {
      trace->Tag("dropped_reads",
                 static_cast<int64_t>(device_result.dropped_reads));
    }
    trace->Close(device_result.wall_clock_ms);
  }

  // Read-out: unembed each read in order, repair to a valid selection,
  // track the best cost on the modeled device-time axis. Unembed and merge
  // interleave per read, so their spans are recorded as closed siblings
  // whose wall durations accumulate across the loop (only when tracing —
  // the untraced hot path pays one branch per read).
  const bool tracing = trace != nullptr;
  int unembed_span = -1;
  int merge_span = -1;
  double unembed_wall_ms = 0.0;
  double merge_wall_ms = 0.0;
  if (tracing) {
    unembed_span = trace->Open("pipeline.unembed");
    trace->Close(0.0);
    merge_span = trace->Open("pipeline.merge");
    trace->Close(0.0);
  }
  double best_cost = std::numeric_limits<double>::infinity();
  double broken_chain_sum = 0.0;
  int valid_reads = 0;
  int read_index = 0;
  // Reads come back bit-packed; unpack each into one reused byte buffer.
  std::vector<uint8_t> physical_read;
  Stopwatch step;
  for (anneal::AssignmentRef packed_read : device_result.raw_reads) {
    if (tracing) step.Restart();
    packed_read.CopyBytesTo(&physical_read);
    ++read_index;
    broken_chain_sum += physical.BrokenChainFraction(physical_read);
    std::vector<uint8_t> logical_read = physical.Unembed(physical_read);
    if (logical.IsValidAssignment(logical_read)) ++valid_reads;
    mqo::MqoSolution solution = logical.RepairedSolution(logical_read);
    if (tracing) {
      unembed_wall_ms += step.ElapsedMillis();
      step.Restart();
    }
    if (options.postprocess_swap_descent) {
      mqo::SwapDescent(problem, &solution);
    }
    double cost = mqo::EvaluateCost(problem, solution);
    if (read_index == 1) result.first_read_cost = cost;
    if (cost < best_cost) {
      best_cost = cost;
      result.best_solution = solution;
      result.cost_vs_device_time.Record(
          static_cast<double>(read_index) * per_read_us / 1000.0, cost);
    }
    if (tracing) merge_wall_ms += step.ElapsedMillis();
  }
  result.best_cost = best_cost;
  int total_reads = device_result.raw_reads.size();
  if (total_reads > 0) {
    result.broken_chain_read_fraction = broken_chain_sum / total_reads;
    result.valid_read_fraction =
        static_cast<double>(valid_reads) / total_reads;
  }
  if (tracing) {
    trace->SetWallAt(unembed_span, unembed_wall_ms);
    trace->TagAt(unembed_span, "reads", static_cast<int64_t>(total_reads));
    trace->SetWallAt(merge_span, merge_wall_ms);
    trace->TagAt(merge_span, "swap_descent",
                 static_cast<int64_t>(options.postprocess_swap_descent ? 1
                                                                       : 0));
  }
  return result;
}

}  // namespace harness
}  // namespace qmqo
