#ifndef QMQO_HARNESS_ASCII_PLOT_H_
#define QMQO_HARNESS_ASCII_PLOT_H_

/// \file ascii_plot.h
/// Terminal rendering of cost-vs-time staircases (log time axis), so bench
/// binaries can reproduce the *shape* of the paper's Figures 4-5 directly
/// in their output.

#include <string>
#include <vector>

#include "harness/trajectory.h"

namespace qmqo {
namespace harness {

/// One plotted series.
struct PlotSeries {
  std::string name;
  const Trajectory* trajectory = nullptr;
};

/// Options of the plot.
struct PlotOptions {
  int width = 72;
  int height = 18;
  /// Log-spaced time axis from min_time_ms to max_time_ms.
  double min_time_ms = 0.1;
  double max_time_ms = 100000.0;
  /// Cost axis range; when min == max, auto-scale from the data.
  double min_cost = 0.0;
  double max_cost = 0.0;
};

/// Renders the plot. Series are drawn with the glyphs 'Q', 'M', 'U', 'C',
/// 'g', 'G', ... (the first letter of the name when unique, otherwise a
/// rotating pool); a legend line follows the canvas.
std::string RenderCostVsTime(const std::vector<PlotSeries>& series,
                             const PlotOptions& options);

}  // namespace harness
}  // namespace qmqo

#endif  // QMQO_HARNESS_ASCII_PLOT_H_
