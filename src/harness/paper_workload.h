#ifndef QMQO_HARNESS_PAPER_WORKLOAD_H_
#define QMQO_HARNESS_PAPER_WORKLOAD_H_

/// \file paper_workload.h
/// The paper's experimental workload (Section 7.1): "test cases that map
/// well to the quantum annealer".
///
/// Each query forms its own cluster with l alternative plans. The number of
/// queries per class is the maximum the (defective) chip can host:
/// 537/253/140/108 for l = 2/3/4/5 in the paper. Plan costs are integral
/// and uniform; cost savings are drawn uniformly from {1, 2} scaled by a
/// constant, and are placed exactly on plan pairs whose chains share a
/// working coupler — the co-design that makes the instances embeddable
/// without wasted qubits.

#include "chimera/topology.h"
#include "embedding/embedding.h"
#include "mqo/problem.h"
#include "util/rng.h"
#include "util/status.h"

namespace qmqo {
namespace harness {

/// Options for `GeneratePaperInstance`.
struct PaperWorkloadOptions {
  int plans_per_query = 2;
  /// -1: use the chip's measured capacity (the paper's setup).
  int num_queries = -1;
  /// Plan costs uniform integral in [cost_min, cost_max]. The paper does
  /// not state its cost distribution; this default is documented in
  /// EXPERIMENTS.md as an assumption.
  double cost_min = 10.0;
  double cost_max = 50.0;
  /// Savings are uniform from {1, 2} times this scale (paper: "chosen with
  /// uniform distribution from {1,2} (scaled by a constant)"). The default
  /// of 1.0 is calibrated so the reproduction matches the paper's in-text
  /// statistics (QA first-read gap ~1.5%, LIN-MQO proof times feasible);
  /// larger scales make sharing dominate plan costs and the instances far
  /// more frustrated than anything the paper's Table 1 is consistent with.
  double saving_scale = 1.0;
  /// Probability of actually materializing a saving on an available
  /// cross-chain coupler (1.0 = all available couplers carry sharing).
  double saving_probability = 1.0;
};

/// A generated instance together with its (pre-computed) embedding: plan
/// variable p of the logical mapping is represented by `embedding.chain(p)`.
struct PaperInstance {
  mqo::MqoProblem problem;
  embedding::Embedding embedding{0};
  int num_queries = 0;
  int plans_per_query = 0;
};

/// Generates one instance on `graph`. Fails when the requested query count
/// exceeds the chip capacity.
Result<PaperInstance> GeneratePaperInstance(
    const chimera::ChimeraGraph& graph, const PaperWorkloadOptions& options,
    Rng* rng);

}  // namespace harness
}  // namespace qmqo

#endif  // QMQO_HARNESS_PAPER_WORKLOAD_H_
