#include "harness/resilient_solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>

#include "anneal/sample_set.h"
#include "anneal/simulated_annealer.h"
#include "anneal/sqa.h"
#include "baselines/greedy.h"
#include "mapping/logical_mapping.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace qmqo {
namespace harness {
namespace {

// Orchestrator-level fault site of each backend ladder rung.
const char* FaultSiteOf(SolveBackend backend) {
  switch (backend) {
    case SolveBackend::kDevice:
      return "solve.device";
    case SolveBackend::kSqa:
      return "solve.sqa";
    case SolveBackend::kSa:
      return "solve.sa";
    case SolveBackend::kGreedy:
      return "solve.greedy";
  }
  return "solve.unknown";
}

// What one attempt produced. `modeled_ms` is the simulated-latency debit
// the orchestrator charges to the deadline (injected device latency; the
// backoff that may follow is added by the caller).
struct AttemptOutcome {
  Status status;
  mqo::MqoSolution solution{0};
  double cost = 0.0;
  double modeled_ms = 0.0;
  double broken_chain_fraction = 0.0;
};

// Refines a read-out into a final answer the way every backend does:
// swap descent, then exact cost.
void FinishSolution(const mqo::MqoProblem& problem, mqo::MqoSolution solution,
                    AttemptOutcome* out) {
  mqo::SwapDescent(problem, &solution);
  out->cost = mqo::EvaluateCost(problem, solution);
  out->solution = std::move(solution);
  out->status = Status::OK();
}

// What one bare-QUBO attempt produced (SolveQubo's counterpart of
// AttemptOutcome; the payload is an assignment instead of an MqoSolution).
struct QuboOutcome {
  Status status;
  std::vector<uint8_t> assignment;
  double cost = 0.0;
  double modeled_ms = 0.0;
  double broken_chain_fraction = 0.0;
};

// Refines a read-out into a final QUBO answer: deterministic
// best-improvement single-flip descent (lowest variable id on ties), then
// exact energy. Strictly decreasing energy over a finite state space, so it
// always terminates; from all-zeros it doubles as the greedy last resort.
void FinishQubo(const qubo::QuboProblem& problem, std::vector<uint8_t> x,
                QuboOutcome* out) {
  x.resize(static_cast<size_t>(problem.num_vars()), 0);
  for (uint8_t& bit : x) bit = bit ? 1 : 0;
  for (;;) {
    int best_var = -1;
    double best_delta = -1e-12;
    for (int i = 0; i < problem.num_vars(); ++i) {
      const double delta = problem.FlipDelta(x, i);
      if (delta < best_delta) {
        best_delta = delta;
        best_var = i;
      }
    }
    if (best_var < 0) break;
    x[static_cast<size_t>(best_var)] ^= 1;
  }
  out->cost = problem.Energy(x);
  out->assignment = std::move(x);
  out->status = Status::OK();
}

// The degradation-ladder driver shared by the MQO and bare-QUBO solve
// paths. `run_attempt(backend, attempt)` produces an outcome carrying
// {status, cost, modeled_ms, broken_chain_fraction}; `commit(outcome)`
// moves the winning payload into the report. Everything else — admission
// gating, retry budget, backoff with seeded jitter, deadline accounting,
// chain-break storm detection, trace spans, attempt records, the
// retries/fallbacks arithmetic — is payload-independent and lives here, so
// the MQO path stays bit-for-bit what it was before the extraction.
template <typename RunAttempt, typename Commit>
void RunLadder(const SolvePolicy& policy, obs::SolveTrace* trace,
               util::Deadline* deadline, Rng* jitter_rng,
               RunAttempt&& run_attempt, Commit&& commit,
               SolveReport* report) {
  const int max_attempts = std::max(1, policy.max_attempts_per_backend);

  // One "solve.attempt" span per ladder attempt (and per gate-skipped
  // rung), nested under whatever span the caller has open.
  auto close_attempt_span = [&](const SolveAttempt& rec) {
    if (trace == nullptr) return;
    // Tag the status *code* only: messages embed wall times, which would
    // leak nondeterminism into otherwise deterministic trace dumps.
    trace->Tag("status",
               rec.status.ok() ? "ok" : StatusCodeToString(rec.status.code()));
    if (rec.backoff_ms > 0.0) {
      trace->Tag("backoff_ms", obs::FormatMs(rec.backoff_ms));
    }
    if (rec.faults_observed > 0) trace->Tag("faults", rec.faults_observed);
    trace->AddModeled(rec.modeled_ms);
    trace->Close(rec.wall_ms);
  };

  Status last_error = Status::Internal("empty backend ladder");
  int backends_tried = 0;
  // Shed-aware entry: under load the service raises `entry_rung` so the
  // request starts at a cheaper backend. 0 keeps the full ladder and is
  // bit-identical to the pre-shedding behavior.
  size_t start_rung = 0;
  if (policy.entry_rung > 0 && !policy.ladder.empty()) {
    start_rung = std::min(static_cast<size_t>(policy.entry_rung),
                          policy.ladder.size() - 1);
  }
  for (size_t rung = start_rung; rung < policy.ladder.size() && !report->ok;
       ++rung) {
    const SolveBackend backend = policy.ladder[rung];
    const bool last_resort = rung + 1 == policy.ladder.size();
    // Consult the admission gate (e.g. a circuit-breaker snapshot) before
    // spending any of the retry budget on this rung. The last resort is
    // never gated — something must answer. A skipped rung costs nothing:
    // one attempt-0 record, no attempts, no backoff.
    if (!last_resort && policy.backend_gate) {
      Status gate = policy.backend_gate(backend);
      if (!gate.ok()) {
        SolveAttempt skipped;
        skipped.backend = backend;
        skipped.attempt = 0;
        skipped.status = gate;
        if (trace != nullptr) {
          trace->Open("solve.attempt");
          trace->Tag("rung", static_cast<int64_t>(rung));
          trace->Tag("backend", SolveBackendName(backend));
          trace->Tag("attempt", static_cast<int64_t>(0));
          trace->Tag("gate", "skipped");
        }
        close_attempt_span(skipped);
        report->attempts.push_back(std::move(skipped));
        last_error = std::move(gate);
        continue;
      }
    }
    bool tried = false;
    for (int attempt = 1; attempt <= max_attempts && !report->ok; ++attempt) {
      // The last resort always runs: a valid (cheap) answer beats honoring
      // an already-blown budget with no answer at all.
      if (deadline->expired() && !last_resort) {
        report->deadline_exhausted = true;
        break;
      }
      tried = true;

      SolveAttempt rec;
      rec.backend = backend;
      rec.attempt = attempt;
      if (trace != nullptr) {
        trace->Open("solve.attempt");
        trace->Tag("rung", static_cast<int64_t>(rung));
        trace->Tag("backend", SolveBackendName(backend));
        trace->Tag("attempt", static_cast<int64_t>(attempt));
      }
      const int64_t faults_before =
          policy.faults != nullptr ? policy.faults->faults_injected() : 0;
      Stopwatch attempt_clock;
      auto out = run_attempt(backend, attempt);
      rec.wall_ms = attempt_clock.ElapsedMillis();
      rec.modeled_ms = out.modeled_ms;
      deadline->Charge(out.modeled_ms);
      rec.broken_chain_fraction = out.broken_chain_fraction;
      rec.status = std::move(out.status);
      rec.faults_observed =
          (policy.faults != nullptr ? policy.faults->faults_injected() : 0) -
          faults_before;
      report->faults_observed += rec.faults_observed;
      ++report->total_attempts;

      if (rec.status.ok() && policy.attempt_timeout_ms > 0.0 &&
          rec.wall_ms + rec.modeled_ms > policy.attempt_timeout_ms) {
        rec.status = Status::Timeout(StrFormat(
            "%s attempt %d took %.1f ms (%.1f wall + %.1f modeled), over "
            "the %.1f ms per-attempt budget",
            SolveBackendName(backend), attempt, rec.wall_ms + rec.modeled_ms,
            rec.wall_ms, rec.modeled_ms, policy.attempt_timeout_ms));
      }
      if (rec.status.ok() && backend == SolveBackend::kDevice &&
          policy.chain_break_storm_fraction > 0.0 &&
          rec.broken_chain_fraction >= policy.chain_break_storm_fraction) {
        rec.status = Status::Internal(StrFormat(
            "chain-break storm: %.0f%% of reads broke chains "
            "(threshold %.0f%%)",
            100.0 * rec.broken_chain_fraction,
            100.0 * policy.chain_break_storm_fraction));
      }

      if (rec.status.ok()) {
        rec.cost = out.cost;
        report->ok = true;
        report->backend = backend;
        report->cost = out.cost;
        report->final_status = Status::OK();
        report->fallbacks = static_cast<int>(rung);
        commit(std::move(out));
        close_attempt_span(rec);
        report->attempts.push_back(std::move(rec));
        break;
      }

      last_error = rec.status;
      if (attempt < max_attempts && policy.backoff_initial_ms > 0.0) {
        double backoff =
            policy.backoff_initial_ms *
            std::pow(policy.backoff_multiplier, attempt - 1);
        if (policy.backoff_jitter > 0.0) {
          backoff *= 1.0 + jitter_rng->UniformReal(-policy.backoff_jitter,
                                                   policy.backoff_jitter);
        }
        backoff = std::max(0.0, backoff);
        // Waiting longer than the remaining budget cannot help; degrade
        // instead of burning the deadline on a sleep.
        if (backoff < deadline->RemainingMillis()) {
          rec.backoff_ms = backoff;
          rec.modeled_ms += backoff;
          deadline->Charge(backoff);
          if (policy.sleep_on_backoff) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff));
          }
        }
      }
      close_attempt_span(rec);
      report->attempts.push_back(std::move(rec));
    }
    if (tried) ++backends_tried;
  }

  report->retries = report->total_attempts - backends_tried;
  if (!report->ok) report->final_status = last_error;
}

}  // namespace

const char* SolveBackendName(SolveBackend backend) {
  switch (backend) {
    case SolveBackend::kDevice:
      return "device";
    case SolveBackend::kSqa:
      return "sqa";
    case SolveBackend::kSa:
      return "sa";
    case SolveBackend::kGreedy:
      return "greedy";
  }
  return "unknown";
}

std::string SolveReport::FailureChain() const {
  std::string chain;
  for (const SolveAttempt& a : attempts) {
    if (!chain.empty()) chain += " -> ";
    chain += StrFormat("%s#%d: ", SolveBackendName(a.backend), a.attempt);
    if (a.status.ok()) {
      chain += StrFormat("OK (cost %g)", a.cost);
    } else {
      chain += a.status.ToString();
    }
  }
  return chain;
}

SolveReport ResilientSolver::Solve(const mqo::MqoProblem& problem,
                                   const embedding::Embedding& embedding,
                                   const chimera::ChimeraGraph& graph,
                                   const QuantumMqoOptions& options) const {
  SolveReport report;
  Stopwatch total;
  util::Deadline deadline = policy_.deadline_ms > 0.0
                                ? util::Deadline::AfterMillis(policy_.deadline_ms)
                                : util::Deadline::Infinite();
  // Jitter draws happen only after deterministic failures, so the stream
  // stays reproducible for equal (seed, faults, policy).
  Rng jitter_rng = Rng(policy_.seed).Fork(0xbac0ffULL);

  // The degraded samplers run on the logical QUBO — built once, shared by
  // every SQA/SA attempt. The device path builds its own inside the
  // pipeline; greedy needs none.
  std::optional<mapping::LogicalMapping> logical;
  Status logical_status;
  {
    Result<mapping::LogicalMapping> built =
        mapping::LogicalMapping::Create(problem, options.logical);
    if (built.ok()) {
      logical.emplace(std::move(built).value());
    } else {
      logical_status = built.status();
    }
  }

  // Per-request embedding cache: the structure is identical across device
  // retries (only gauges/fault keys change), so every retry after the first
  // re-weights the cached layout instead of re-running verification,
  // placement, and spanning-tree search. A caller-provided cache (shared
  // across requests) takes precedence.
  embedding::EmbeddingCache request_cache;
  embedding::EmbeddingCache* embedding_cache =
      options.embedding_cache != nullptr ? options.embedding_cache
                                         : &request_cache;

  auto run_attempt = [&](SolveBackend backend, int attempt) -> AttemptOutcome {
    AttemptOutcome out;
    // The orchestrator's own fault point: force a whole rung down.
    if (policy_.faults != nullptr) {
      const char* site = FaultSiteOf(backend);
      uint64_t key = static_cast<uint64_t>(attempt - 1);
      Status injected = policy_.faults->MaybeFail(site, key);
      if (!injected.ok()) {
        out.status = std::move(injected);
        out.modeled_ms = policy_.faults->LatencyMillis(site);
        return out;
      }
    }
    switch (backend) {
      case SolveBackend::kDevice: {
        QuantumMqoOptions attempt_options = options;
        attempt_options.embedding_cache = embedding_cache;
        if (policy_.faults != nullptr && attempt_options.faults == nullptr) {
          attempt_options.faults = policy_.faults;
        }
        attempt_options.fault_attempt = static_cast<uint64_t>(attempt - 1);
        if (attempt > 1) {
          // Fresh gauges per retry: refork the caller's device seed so a
          // chain-break storm is not replayed verbatim. Attempt 1 keeps the
          // caller's seed — a no-fault solve reproduces the plain pipeline.
          attempt_options.device.seed =
              Rng(options.device.seed)
                  .Fork(static_cast<uint64_t>(attempt))
                  .Next();
        }
        const int64_t latency_fires_before =
            policy_.faults != nullptr
                ? policy_.faults->FaultCount("device.latency")
                : 0;
        Result<QuantumMqoResult> solved =
            SolveQuantumMqo(problem, embedding, graph, attempt_options);
        if (!solved.ok()) {
          out.status = solved.status();
          // A failed device call still burned its injected latency; the
          // result payload is gone, so recover the charge from the fault
          // counters (each firing costs the spec's latency_ms).
          if (policy_.faults != nullptr) {
            out.modeled_ms =
                static_cast<double>(
                    policy_.faults->FaultCount("device.latency") -
                    latency_fires_before) *
                policy_.faults->LatencyMillis("device.latency");
          }
          return out;
        }
        out.modeled_ms = solved->injected_latency_ms;
        out.broken_chain_fraction = solved->broken_chain_read_fraction;
        out.cost = solved->best_cost;
        out.solution = solved->best_solution;
        out.status = Status::OK();
        return out;
      }
      case SolveBackend::kSqa: {
        if (!logical.has_value()) {
          out.status = logical_status;
          return out;
        }
        anneal::SqaOptions sqa;
        sqa.num_reads = policy_.sqa_reads;
        sqa.num_slices = policy_.sqa_slices;
        sqa.sweeps = policy_.sqa_sweeps;
        sqa.seed =
            Rng(policy_.seed).Fork(0x50aULL + static_cast<uint64_t>(attempt))
                .Next();
        sqa.num_threads = options.device.num_threads;
        sqa.executor = options.device.executor;
        sqa.sweep_kernel = options.device.sweep_kernel;
        anneal::SampleSet set =
            anneal::SimulatedQuantumAnnealer(sqa).Sample(logical->qubo());
        if (set.empty()) {
          out.status = Status::Internal("SQA backend returned no samples");
          return out;
        }
        std::vector<uint8_t> bytes;
        set.best().assignment.CopyBytesTo(&bytes);
        FinishSolution(problem, logical->RepairedSolution(bytes), &out);
        return out;
      }
      case SolveBackend::kSa: {
        if (!logical.has_value()) {
          out.status = logical_status;
          return out;
        }
        anneal::SaOptions sa;
        sa.num_reads = policy_.sa_reads;
        sa.sweeps_per_read = policy_.sa_sweeps;
        sa.seed =
            Rng(policy_.seed).Fork(0x5aULL + static_cast<uint64_t>(attempt))
                .Next();
        sa.num_threads = options.device.num_threads;
        sa.executor = options.device.executor;
        sa.sweep_kernel = options.device.sweep_kernel;
        anneal::SampleSet set =
            anneal::SimulatedAnnealer(sa).Sample(logical->qubo());
        if (set.empty()) {
          out.status = Status::Internal("SA backend returned no samples");
          return out;
        }
        std::vector<uint8_t> bytes;
        set.best().assignment.CopyBytesTo(&bytes);
        FinishSolution(problem, logical->RepairedSolution(bytes), &out);
        return out;
      }
      case SolveBackend::kGreedy: {
        FinishSolution(problem, baselines::GreedySolver::Construct(problem),
                       &out);
        return out;
      }
    }
    out.status = Status::Internal("unknown backend");
    return out;
  };

  // The ladder driver handles everything backend-agnostic: retries, gates,
  // backoff, deadline, storm checks, trace spans, attempt records. The
  // device backend's pipeline spans become children of the attempt spans
  // automatically: the attempt options carry the same trace pointer.
  RunLadder(policy_, options.trace, &deadline, &jitter_rng, run_attempt,
            [&report](AttemptOutcome&& out) {
              report.solution = std::move(out.solution);
            },
            &report);
  report.total_wall_ms = total.ElapsedMillis();
  report.total_modeled_ms = deadline.charged_millis();
  return report;
}

SolveReport ResilientSolver::SolveQubo(const qubo::QuboProblem& problem,
                                       const QuantumMqoOptions& options) const {
  SolveReport report;
  Stopwatch total;
  util::Deadline deadline = policy_.deadline_ms > 0.0
                                ? util::Deadline::AfterMillis(policy_.deadline_ms)
                                : util::Deadline::Infinite();
  Rng jitter_rng = Rng(policy_.seed).Fork(0xbac0ffULL);
  // Samplers share the problem across reads/threads; build the evaluation
  // structures once up front so the sharing is data-race-free.
  problem.Finalize();

  // A bare QUBO carries no embedding, so the device rung cannot run. Gate
  // it with a typed Unimplemented — one attempt-0 record, no retry budget
  // burned — and let the ladder enter at SQA. The caller's own gate (e.g.
  // the service's breaker snapshot) still applies to every other rung.
  SolvePolicy policy = policy_;
  const std::function<Status(SolveBackend)> base_gate = policy_.backend_gate;
  policy.backend_gate = [base_gate](SolveBackend backend) -> Status {
    if (backend == SolveBackend::kDevice) {
      return Status::Unimplemented(
          "device backend requires an embedded MQO problem; bare QUBO "
          "solves enter the ladder at SQA");
    }
    return base_gate ? base_gate(backend) : Status::OK();
  };

  auto run_attempt = [&](SolveBackend backend, int attempt) -> QuboOutcome {
    QuboOutcome out;
    // The orchestrator's own fault point: force a whole rung down. Same
    // sites as the MQO path, so chaos configurations apply unchanged.
    if (policy.faults != nullptr) {
      const char* site = FaultSiteOf(backend);
      uint64_t key = static_cast<uint64_t>(attempt - 1);
      Status injected = policy.faults->MaybeFail(site, key);
      if (!injected.ok()) {
        out.status = std::move(injected);
        out.modeled_ms = policy.faults->LatencyMillis(site);
        return out;
      }
    }
    switch (backend) {
      case SolveBackend::kDevice: {
        // Reachable only when a caller puts kDevice last in the ladder
        // (the last resort is never gated).
        out.status = Status::Unimplemented(
            "device backend requires an embedded MQO problem");
        return out;
      }
      case SolveBackend::kSqa: {
        anneal::SqaOptions sqa;
        sqa.num_reads = policy.sqa_reads;
        sqa.num_slices = policy.sqa_slices;
        sqa.sweeps = policy.sqa_sweeps;
        sqa.seed =
            Rng(policy.seed).Fork(0x50aULL + static_cast<uint64_t>(attempt))
                .Next();
        sqa.num_threads = options.device.num_threads;
        sqa.executor = options.device.executor;
        sqa.sweep_kernel = options.device.sweep_kernel;
        anneal::SampleSet set =
            anneal::SimulatedQuantumAnnealer(sqa).Sample(problem);
        if (set.empty()) {
          out.status = Status::Internal("SQA backend returned no samples");
          return out;
        }
        std::vector<uint8_t> bytes;
        set.best().assignment.CopyBytesTo(&bytes);
        FinishQubo(problem, std::move(bytes), &out);
        return out;
      }
      case SolveBackend::kSa: {
        anneal::SaOptions sa;
        sa.num_reads = policy.sa_reads;
        sa.sweeps_per_read = policy.sa_sweeps;
        sa.seed =
            Rng(policy.seed).Fork(0x5aULL + static_cast<uint64_t>(attempt))
                .Next();
        sa.num_threads = options.device.num_threads;
        sa.executor = options.device.executor;
        sa.sweep_kernel = options.device.sweep_kernel;
        anneal::SampleSet set = anneal::SimulatedAnnealer(sa).Sample(problem);
        if (set.empty()) {
          out.status = Status::Internal("SA backend returned no samples");
          return out;
        }
        std::vector<uint8_t> bytes;
        set.best().assignment.CopyBytesTo(&bytes);
        FinishQubo(problem, std::move(bytes), &out);
        return out;
      }
      case SolveBackend::kGreedy: {
        FinishQubo(problem,
                   std::vector<uint8_t>(
                       static_cast<size_t>(problem.num_vars()), 0),
                   &out);
        return out;
      }
    }
    out.status = Status::Internal("unknown backend");
    return out;
  };

  RunLadder(policy, options.trace, &deadline, &jitter_rng, run_attempt,
            [&report](QuboOutcome&& out) {
              report.qubo_energy = out.cost;
              report.qubo_assignment = std::move(out.assignment);
            },
            &report);
  report.total_wall_ms = total.ElapsedMillis();
  report.total_modeled_ms = deadline.charged_millis();
  return report;
}

}  // namespace harness
}  // namespace qmqo
