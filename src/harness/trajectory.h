#ifndef QMQO_HARNESS_TRAJECTORY_H_
#define QMQO_HARNESS_TRAJECTORY_H_

/// \file trajectory.h
/// Cost-vs-time trajectories: the measurement abstraction behind the
/// paper's Figures 4-6. A trajectory is the non-increasing staircase of
/// the best solution cost over optimization time.

#include <limits>
#include <vector>

namespace qmqo {
namespace harness {

/// One point of a staircase.
struct TrajectoryPoint {
  double time_ms = 0.0;
  double cost = 0.0;
};

/// A non-increasing best-cost-so-far staircase.
class Trajectory {
 public:
  Trajectory() = default;

  /// Records that a solution of cost `cost` was available at `time_ms`.
  /// Only improvements are kept.
  void Record(double time_ms, double cost);

  bool empty() const { return points_.empty(); }
  const std::vector<TrajectoryPoint>& points() const { return points_; }

  /// Best cost available at (or before) `time_ms`; +inf when nothing was
  /// found by then.
  double CostAt(double time_ms) const;

  /// Earliest time at which a cost <= `cost` was available; +inf if never.
  double TimeToReach(double cost) const;

  /// Final (best) cost; +inf when empty.
  double FinalCost() const;

  /// The paper's milestone grid: 1, 10, 100, 1e3, 1e4, 1e5 ms.
  static std::vector<double> PaperMilestonesMs();

 private:
  std::vector<TrajectoryPoint> points_;
};

}  // namespace harness
}  // namespace qmqo

#endif  // QMQO_HARNESS_TRAJECTORY_H_
