#include "harness/paper_workload.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "embedding/capacity.h"
#include "embedding/clustered.h"
#include "util/string_util.h"

namespace qmqo {
namespace harness {

Result<PaperInstance> GeneratePaperInstance(
    const chimera::ChimeraGraph& graph, const PaperWorkloadOptions& options,
    Rng* rng) {
  const int l = options.plans_per_query;
  if (l < 2) {
    return Status::InvalidArgument("plans_per_query must be at least 2");
  }
  int capacity = embedding::MeasuredMaxQueries(graph, l);
  int num_queries =
      options.num_queries > 0 ? options.num_queries : capacity;
  if (num_queries > capacity) {
    return Status::ResourceExhausted(
        StrFormat("requested %d queries with %d plans; chip capacity is %d",
                  num_queries, l, capacity));
  }

  PaperInstance instance;
  instance.num_queries = num_queries;
  instance.plans_per_query = l;

  // Embedding: each query is one cluster (pair matching for l = 2).
  if (l == 2) {
    QMQO_ASSIGN_OR_RETURN(
        instance.embedding,
        embedding::PairMatchingEmbedder::Embed(num_queries, graph));
  } else {
    std::vector<int> cluster_sizes(static_cast<size_t>(num_queries), l);
    QMQO_ASSIGN_OR_RETURN(
        instance.embedding,
        embedding::ClusteredEmbedder::Embed(cluster_sizes, graph));
  }

  // Queries with uniform integral plan costs.
  for (int q = 0; q < num_queries; ++q) {
    std::vector<double> costs;
    costs.reserve(static_cast<size_t>(l));
    for (int k = 0; k < l; ++k) {
      costs.push_back(
          std::round(rng->UniformReal(options.cost_min, options.cost_max)));
    }
    instance.problem.AddQuery(std::move(costs));
  }

  // Savings on available cross-chain couplers between different queries.
  // Variable v is plan v of query v / l (cluster-major numbering).
  std::set<std::pair<int, int>> linked;
  for (const embedding::ChainCoupler& coupler :
       embedding::CrossChainCouplers(instance.embedding, graph)) {
    int qa = coupler.var_a / l;
    int qb = coupler.var_b / l;
    if (qa == qb) continue;  // intra-query coupler: used by the E_M term
    auto key = std::make_pair(coupler.var_a, coupler.var_b);
    if (!linked.insert(key).second) continue;  // several couplers, one link
    if (!rng->Bernoulli(options.saving_probability)) continue;
    double value =
        options.saving_scale * static_cast<double>(rng->UniformInt(1, 2));
    QMQO_RETURN_IF_ERROR(
        instance.problem.AddSaving(coupler.var_a, coupler.var_b, value));
  }
  QMQO_RETURN_IF_ERROR(instance.problem.Validate());
  return instance;
}

}  // namespace harness
}  // namespace qmqo
