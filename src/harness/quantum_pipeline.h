#ifndef QMQO_HARNESS_QUANTUM_PIPELINE_H_
#define QMQO_HARNESS_QUANTUM_PIPELINE_H_

/// \file quantum_pipeline.h
/// Algorithm 1 of the paper, end to end:
///
///   MQO --LogicalMapping--> logical QUBO --EmbeddedQubo--> physical QUBO
///       --DWaveSimulator--> samples --Unembed + inverse mapping--> plans.
///
/// Besides the best solution, the pipeline reports the paper's measured
/// quantities: preprocessing time (logical + physical mapping), modeled
/// device time, the best-MQO-cost-after-k-reads staircase (in modeled
/// device time), and chain-break diagnostics.

#include <vector>

#include "anneal/dwave_simulator.h"
#include "chimera/topology.h"
#include "embedding/embedded_qubo.h"
#include "embedding/embedding.h"
#include "embedding/embedding_cache.h"
#include "harness/trajectory.h"
#include "mapping/logical_mapping.h"
#include "mqo/problem.h"
#include "mqo/solution.h"
#include "obs/trace.h"
#include "util/status.h"

namespace qmqo {
namespace util {
class FaultInjector;
}  // namespace util

namespace harness {

/// Options of the full pipeline.
struct QuantumMqoOptions {
  mapping::LogicalMappingOptions logical;
  embedding::EmbeddedQuboOptions physical;
  anneal::DWaveOptions device;
  /// Apply greedy plan-swap descent to each read during the classical
  /// read-out (the analogue of D-Wave SAPI's "optimization" post-processing
  /// mode, which runs server-side pipelined with annealing). Costs ~1 ms of
  /// classical time per read, which is NOT charged to the modeled device
  /// time — the same accounting the paper uses for its read-outs.
  bool postprocess_swap_descent = true;
  /// Fault injection for the whole solve path (never owned; null = no
  /// faults). Site "pipeline.solve" (key: `fault_attempt`) fails the call
  /// at entry; the injector also propagates into `physical.faults` and
  /// `device.faults` when those are unset, with `fault_attempt` as the
  /// embed key / device fault epoch — one injector covers every stage.
  const util::FaultInjector* faults = nullptr;
  /// Attempt number used as the fault key/epoch; orchestrators increment
  /// it per retry so retries draw fresh fault decisions.
  uint64_t fault_attempt = 0;
  /// Structure-keyed embedding cache (never owned; null = always compile
  /// cold). When set, the physical mapping is served by
  /// `EmbeddingCache::GetOrCreate`, which reuses a captured layout for
  /// repeated structures — bit-identical results, large preprocessing
  /// savings on repeated shapes (retries, per-request re-weights).
  embedding::EmbeddingCache* embedding_cache = nullptr;
  /// Optional solve trace (never owned; null = no tracing, one pointer
  /// test per stage). When set, the pipeline opens spans under the
  /// caller's innermost open span: `pipeline.embed` (tag cache_hit),
  /// `pipeline.anneal` with one `anneal.gauge` child per programming
  /// cycle, `pipeline.unembed`, and `pipeline.merge`. Modeled durations
  /// come from the device-time model (deterministic); wall durations are
  /// measured and only meaningful to humans.
  obs::SolveTrace* trace = nullptr;
};

/// Everything Algorithm 1 produces, plus the paper's measurements.
struct QuantumMqoResult {
  mqo::MqoSolution best_solution{0};
  double best_cost = 0.0;
  /// Classical preprocessing: logical + physical mapping, milliseconds
  /// (the paper reports 112-135 ms for its unoptimized implementation).
  double preprocessing_ms = 0.0;
  /// Modeled device time for all reads, microseconds.
  double device_time_us = 0.0;
  /// Wall-clock time spent simulating the device, milliseconds.
  double simulator_wall_ms = 0.0;
  /// Best MQO cost after each read, on the modeled device-time axis.
  Trajectory cost_vs_device_time;
  /// MQO cost of the first read's solution (the paper's 1-run quality).
  double first_read_cost = 0.0;
  /// Mean fraction of broken chains per read (0 = all chains always
  /// consistent).
  double broken_chain_read_fraction = 0.0;
  /// Fraction of reads whose repaired solution was already valid.
  double valid_read_fraction = 0.0;
  /// Physical qubits used.
  int physical_qubits = 0;
  /// Fault diagnostics (all zero without an armed injector): faults fired
  /// inside the device call, reads lost to injected dropout, and modeled
  /// device latency injected (milliseconds; charge it to deadlines).
  int64_t faults_injected = 0;
  int dropped_reads = 0;
  double injected_latency_ms = 0.0;
  /// True when the physical mapping was served from the embedding cache
  /// (always false without `options.embedding_cache`).
  bool embedding_cache_hit = false;
};

/// Runs Algorithm 1 with a caller-provided embedding of the plan variables
/// (the workload generator produces instance + embedding together).
Result<QuantumMqoResult> SolveQuantumMqo(const mqo::MqoProblem& problem,
                                         const embedding::Embedding& embedding,
                                         const chimera::ChimeraGraph& graph,
                                         const QuantumMqoOptions& options);

}  // namespace harness
}  // namespace qmqo

#endif  // QMQO_HARNESS_QUANTUM_PIPELINE_H_
