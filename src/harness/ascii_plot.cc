#include "harness/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace qmqo {
namespace harness {

std::string RenderCostVsTime(const std::vector<PlotSeries>& series,
                             const PlotOptions& options) {
  const int w = std::max(16, options.width);
  const int h = std::max(6, options.height);
  const double log_lo = std::log10(options.min_time_ms);
  const double log_hi = std::log10(options.max_time_ms);

  // Cost range.
  double cost_lo = options.min_cost;
  double cost_hi = options.max_cost;
  if (cost_lo == cost_hi) {
    cost_lo = std::numeric_limits<double>::infinity();
    cost_hi = -std::numeric_limits<double>::infinity();
    for (const PlotSeries& s : series) {
      for (const TrajectoryPoint& point : s.trajectory->points()) {
        cost_lo = std::min(cost_lo, point.cost);
        cost_hi = std::max(cost_hi, point.cost);
      }
    }
    if (!std::isfinite(cost_lo)) {
      cost_lo = 0.0;
      cost_hi = 1.0;
    }
    if (cost_hi - cost_lo < 1e-12) cost_hi = cost_lo + 1.0;
    double pad = 0.05 * (cost_hi - cost_lo);
    cost_lo -= pad;
    cost_hi += pad;
  }

  std::vector<std::string> canvas(static_cast<size_t>(h),
                                  std::string(static_cast<size_t>(w), ' '));
  const std::string glyph_pool = "QMUCgGXZ*+o#";
  std::string legend;
  for (size_t si = 0; si < series.size(); ++si) {
    char glyph = glyph_pool[si % glyph_pool.size()];
    const Trajectory* trajectory = series[si].trajectory;
    if (!legend.empty()) legend += "   ";
    legend += StrFormat("%c=%s", glyph, series[si].name.c_str());
    for (int col = 0; col < w; ++col) {
      double t = std::pow(
          10.0, log_lo + (log_hi - log_lo) * col / std::max(1, w - 1));
      double cost = trajectory->CostAt(t);
      if (!std::isfinite(cost)) continue;
      double frac = (cost - cost_lo) / (cost_hi - cost_lo);
      int row = static_cast<int>((1.0 - frac) * (h - 1) + 0.5);
      row = std::clamp(row, 0, h - 1);
      canvas[static_cast<size_t>(row)][static_cast<size_t>(col)] = glyph;
    }
  }

  std::string out;
  out += StrFormat("cost %10.1f +", cost_hi);
  out += std::string(static_cast<size_t>(w), '-') + "+\n";
  for (int row = 0; row < h; ++row) {
    out += "                |";
    out += canvas[static_cast<size_t>(row)];
    out += "|\n";
  }
  out += StrFormat("cost %10.1f +", cost_lo);
  out += std::string(static_cast<size_t>(w), '-') + "+\n";
  out += StrFormat("                 time (log): %.2g ms .. %.2g ms\n",
                   options.min_time_ms, options.max_time_ms);
  out += "                 " + legend + "\n";
  return out;
}

}  // namespace harness
}  // namespace qmqo
