#ifndef QMQO_HARNESS_RESILIENT_SOLVER_H_
#define QMQO_HARNESS_RESILIENT_SOLVER_H_

/// \file resilient_solver.h
/// The resilient solve orchestrator: MQO solving that survives an
/// unreliable device.
///
/// The paper's workflow assumes every stage succeeds; real annealer service
/// traffic does not get that luxury — programming cycles fail, reads drop,
/// chains break in storms, and the quantum path can simply be too slow for
/// a request's latency budget (the hybrid classical+quantum MQO line of
/// work routes around exactly this). `ResilientSolver` wraps the quantum
/// pipeline in a `SolvePolicy`:
///
///  * a per-request deadline (`util::Deadline`) and per-attempt timeout;
///  * bounded retries with exponential backoff and seeded jitter;
///  * retry-with-fresh-gauges when a device answer comes back as a
///    chain-break storm (each retry reseeds the gauge stream, the paper's
///    own remedy for gauge-dependent noise). Retries share a per-request
///    `embedding::EmbeddingCache` (or the caller's, via
///    `QuantumMqoOptions::embedding_cache`), so only the first device
///    attempt pays for embedding compilation — later attempts re-weight
///    the cached layout bit-identically;
///  * graceful degradation down the backend ladder
///    device -> SQA -> SA -> greedy when attempts fail or the budget runs
///    out — greedy is near-instant and always succeeds, so a valid MQO
///    solution comes back even when the device fails 100% of attempts.
///
/// Every attempt is recorded in a `SolveReport` (backend, typed status,
/// wall and modeled time, faults observed, backoff applied), so a caller —
/// or the chaos suite — can see exactly which failures were absorbed.
/// When `QuantumMqoOptions::trace` is set, the orchestrator additionally
/// emits one `solve.attempt` span per ladder attempt (tags: rung, backend,
/// attempt, status code, backoff, faults) with the pipeline's stage spans
/// nested under the device attempts — see obs/trace.h.
/// The orchestrator never throws and never aborts: every failure mode is a
/// `Status` inside the report.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "chimera/topology.h"
#include "embedding/embedding.h"
#include "harness/quantum_pipeline.h"
#include "mqo/problem.h"
#include "mqo/solution.h"
#include "qubo/qubo.h"
#include "util/status.h"

namespace qmqo {
namespace util {
class FaultInjector;
}  // namespace util

namespace harness {

/// The degradation ladder, cheapest last.
enum class SolveBackend {
  kDevice,  ///< full quantum pipeline (embedding + device model)
  kSqa,     ///< simulated quantum annealing on the logical QUBO
  kSa,      ///< classical simulated annealing on the logical QUBO
  kGreedy,  ///< deterministic greedy construction + swap descent
};

/// Stable lower-case name ("device", "sqa", "sa", "greedy").
const char* SolveBackendName(SolveBackend backend);

/// Retry/deadline/degradation policy of one solve request.
struct SolvePolicy {
  /// Per-request deadline, milliseconds; <= 0 = none. When the budget runs
  /// out, remaining expensive backends are skipped and the last-resort
  /// backend still answers (its cost is negligible).
  double deadline_ms = 0.0;
  /// Per-attempt budget, milliseconds; <= 0 = none. An attempt whose wall
  /// plus modeled (injected-latency) time exceeds it is classified
  /// `Status::Timeout` and its result discarded.
  double attempt_timeout_ms = 0.0;
  /// Attempts per backend before degrading (>= 1).
  int max_attempts_per_backend = 2;
  /// Exponential backoff between retries on the same backend:
  /// initial * multiplier^(retry-1), jittered by +-`backoff_jitter`
  /// fraction (seeded — reports are reproducible). Backoff is *modeled*
  /// time charged against the deadline; `sleep_on_backoff` makes it real.
  double backoff_initial_ms = 0.0;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.25;
  bool sleep_on_backoff = false;
  /// A successful device answer whose mean broken-chain read fraction
  /// reaches this is treated as a failed attempt (a "chain-break storm")
  /// and retried with fresh gauges.
  double chain_break_storm_fraction = 0.75;
  /// The backend ladder, tried in order. The default ends in kGreedy,
  /// which cannot fail (unless explicitly fault-injected).
  std::vector<SolveBackend> ladder = {SolveBackend::kDevice,
                                      SolveBackend::kSqa, SolveBackend::kSa,
                                      SolveBackend::kGreedy};
  /// Sampler budgets of the degraded classical backends (they run on the
  /// logical QUBO, no embedding).
  int sqa_reads = 16;
  int sqa_slices = 8;
  int sqa_sweeps = 64;
  int sa_reads = 32;
  int sa_sweeps = 256;
  /// Seeds backoff jitter and the degraded samplers' read streams; device
  /// retries fork fresh gauge seeds from the request's device seed.
  uint64_t seed = 1;
  /// Fault injection (never owned; null = no faults). Besides the sites
  /// inside the pipeline (see QuantumMqoOptions::faults), the orchestrator
  /// itself queries "solve.device" / "solve.sqa" / "solve.sa" /
  /// "solve.greedy" (key: 0-based attempt within the backend) before each
  /// attempt, so whole backends can be forced down for chaos tests.
  const util::FaultInjector* faults = nullptr;
  /// Admission gate consulted once per ladder rung (except the last
  /// resort, which always runs): a non-OK return skips the rung entirely —
  /// no attempts, no retry budget, no backoff — recording one attempt-0
  /// entry carrying the gate's status. The solve service installs a
  /// circuit-breaker snapshot here so requests stop burning their budget
  /// on a backend the fleet already knows is down. Must be thread-safe or
  /// effectively immutable (the service captures a per-request snapshot).
  std::function<Status(SolveBackend)> backend_gate;
  /// First ladder rung to try (shed-aware rung selection): under queue
  /// pressure the service raises this so overloaded traffic enters the
  /// ladder at a cheaper backend. Clamped to [0, ladder.size() - 1];
  /// 0 = the full ladder (default, bit-identical to the pre-shedding
  /// behavior).
  int entry_rung = 0;
};

/// One attempt's record inside a `SolveReport`.
struct SolveAttempt {
  SolveBackend backend = SolveBackend::kGreedy;
  /// 1-based attempt number within the backend; 0 for a rung the
  /// `backend_gate` skipped without running (the status carries the gate's
  /// reason, e.g. an open circuit breaker).
  int attempt = 0;
  /// OK when this attempt produced the returned answer.
  Status status;
  /// MQO cost of the attempt's answer (only when `status.ok()`).
  double cost = 0.0;
  double wall_ms = 0.0;
  /// Modeled time charged to the deadline by this attempt: injected device
  /// latency plus (for failed attempts) the backoff that followed.
  double modeled_ms = 0.0;
  /// Backoff scheduled after this (failed) attempt, milliseconds.
  double backoff_ms = 0.0;
  /// Faults fired during the attempt (pipeline + orchestrator sites).
  int64_t faults_observed = 0;
  /// Device attempts: mean broken-chain fraction of the call's reads.
  double broken_chain_fraction = 0.0;
};

/// Everything one resilient solve produced and absorbed.
struct SolveReport {
  /// True when some backend answered with a valid solution.
  bool ok = false;
  /// OK on success; otherwise the last attempt's error.
  Status final_status;
  /// The backend that answered.
  SolveBackend backend = SolveBackend::kGreedy;
  mqo::MqoSolution solution{0};
  /// Bare-QUBO answers (`SolveQubo`): the winning assignment (one 0/1 byte
  /// per variable) and its energy. Empty / 0 for MQO solves, where the
  /// answer lives in `solution` instead.
  std::vector<uint8_t> qubo_assignment;
  double qubo_energy = 0.0;
  double cost = 0.0;
  int total_attempts = 0;
  /// Re-attempts on the same backend (total attempts minus backends tried).
  int retries = 0;
  /// Backend downgrades taken before the answer (0 = device answered).
  int fallbacks = 0;
  int64_t faults_observed = 0;
  /// True when the deadline expired before the answering backend ran (the
  /// orchestrator skipped ahead to cheaper backends).
  bool deadline_exhausted = false;
  double total_wall_ms = 0.0;
  /// Total modeled time charged to the deadline (injected latency +
  /// modeled backoff).
  double total_modeled_ms = 0.0;
  std::vector<SolveAttempt> attempts;

  /// Human-readable failure chain, e.g.
  /// "device#1: Internal: injected programming-cycle failure -> device#2:
  ///  Timeout: ... -> sqa#1: OK (cost 812)".
  std::string FailureChain() const;
};

/// The orchestrator. Stateless between calls; safe to reuse.
class ResilientSolver {
 public:
  explicit ResilientSolver(const SolvePolicy& policy) : policy_(policy) {}

  /// Solves `problem` under the policy. Never throws; always returns a
  /// report (with `ok == false` only when every ladder backend failed,
  /// which requires fault-injecting the last resort). `options` configures
  /// the device backend exactly like `SolveQuantumMqo`; its executor and
  /// thread count are reused by the degraded samplers.
  SolveReport Solve(const mqo::MqoProblem& problem,
                    const embedding::Embedding& embedding,
                    const chimera::ChimeraGraph& graph,
                    const QuantumMqoOptions& options) const;

  /// Solves a bare QUBO (no MQO structure, no embedding) through the same
  /// degradation ladder, retry budget, deadline accounting, backoff, gate,
  /// fault sites, and trace spans as `Solve`. The device rung cannot run
  /// without an embedded MQO problem, so it is gated with a typed
  /// `Unimplemented` (one attempt-0 record, no retry budget burned) and the
  /// ladder enters at SQA. Each sampler's best read is refined by a
  /// deterministic best-improvement single-flip descent; the greedy last
  /// resort is that descent from all-zeros, which always answers. The
  /// winning assignment and energy come back in
  /// `SolveReport::qubo_assignment` / `qubo_energy` (`cost` mirrors the
  /// energy). `options` supplies the executor/threads/kernel for the
  /// samplers and the optional trace, exactly as in `Solve`.
  SolveReport SolveQubo(const qubo::QuboProblem& problem,
                        const QuantumMqoOptions& options) const;

  const SolvePolicy& policy() const { return policy_; }

 private:
  SolvePolicy policy_;
};

}  // namespace harness
}  // namespace qmqo

#endif  // QMQO_HARNESS_RESILIENT_SOLVER_H_
