#include "harness/trajectory.h"

namespace qmqo {
namespace harness {

void Trajectory::Record(double time_ms, double cost) {
  if (!points_.empty()) {
    if (cost >= points_.back().cost) return;
    // Guard against clock jitter: keep times monotone.
    if (time_ms < points_.back().time_ms) time_ms = points_.back().time_ms;
  }
  points_.push_back(TrajectoryPoint{time_ms, cost});
}

double Trajectory::CostAt(double time_ms) const {
  double best = std::numeric_limits<double>::infinity();
  for (const TrajectoryPoint& point : points_) {
    if (point.time_ms <= time_ms) {
      best = point.cost;
    } else {
      break;
    }
  }
  return best;
}

double Trajectory::TimeToReach(double cost) const {
  for (const TrajectoryPoint& point : points_) {
    if (point.cost <= cost) return point.time_ms;
  }
  return std::numeric_limits<double>::infinity();
}

double Trajectory::FinalCost() const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  return points_.back().cost;
}

std::vector<double> Trajectory::PaperMilestonesMs() {
  return {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0};
}

}  // namespace harness
}  // namespace qmqo
