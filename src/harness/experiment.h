#ifndef QMQO_HARNESS_EXPERIMENT_H_
#define QMQO_HARNESS_EXPERIMENT_H_

/// \file experiment.h
/// The cost-vs-time experiment of the paper's Section 7: per instance, run
/// the quantum pipeline plus all classical competitors (LIN-MQO, LIN-QUB,
/// CLIMB, GA(50), GA(200)) and record best-cost trajectories; aggregate
/// per class (number of queries x plans per query) into the data behind
/// Figures 4-6 and Table 1.

#include <cstdint>
#include <string>
#include <vector>

#include "chimera/topology.h"
#include "harness/paper_workload.h"
#include "harness/quantum_pipeline.h"
#include "harness/trajectory.h"
#include "util/status.h"

namespace qmqo {
namespace util {
class Executor;
}  // namespace util

namespace harness {

/// Configuration of one experiment class.
struct ExperimentConfig {
  PaperWorkloadOptions workload;
  /// Instances per class (paper: 20).
  int num_instances = 20;
  /// Wall-clock budget per classical algorithm per instance, ms
  /// (paper: 1e5; scaled down by default so bench suites finish quickly).
  double classical_time_limit_ms = 1000.0;
  /// Deterministic caps, 0 = off. When set, the anytime baselines stop
  /// after this many restarts/generations and the exact solvers after this
  /// many search nodes (instead of — in practice, before — the wall-clock
  /// budget), which makes every recorded cost machine-independent; the
  /// thread-count determinism tests rely on this.
  int64_t classical_max_iterations = 0;
  int64_t classical_max_nodes = 0;
  /// GA population sizes to run (paper: 50 and 200).
  std::vector<int> ga_populations = {50, 200};
  /// Run the (slow) exact solver on the QUBO reformulation.
  bool run_lin_qub = true;
  /// Quantum pipeline configuration. The device model's Metropolis sweep
  /// kernel rides along here (`quantum.device.sweep_kernel`; see
  /// anneal/sweep_kernel.h): `kScalar` keeps the class results bit-exact
  /// across PRs, the checkerboard kernels trade that stream for
  /// throughput. The bench drivers plumb QMQO_BENCH_KERNEL into it.
  QuantumMqoOptions quantum;
  uint64_t seed = 42;
  /// Worker threads for the instance fan-out: 1 = serial (default),
  /// 0 = hardware concurrency. Instances are independent — each forks its
  /// own RNG stream from `seed` (the same discipline as the read engine) —
  /// so every seed-derived quantity in `ClassResult` is bit-identical to
  /// the serial run at any thread count; under the deterministic caps
  /// above (which remove the wall-clock dependence of the classical
  /// baselines) the whole result is.
  int num_threads = 1;
  /// Worker pool for the fan-out; null = the process-wide
  /// `util::Executor::Shared()` pool. Never owned.
  util::Executor* executor = nullptr;
};

/// Trajectories of one algorithm on one instance.
struct AlgorithmSeries {
  std::string name;
  Trajectory trajectory;
  /// True when the time axis is modeled device time rather than wall time.
  bool device_time_axis = false;
};

/// Everything measured on one instance.
struct InstanceRun {
  std::vector<AlgorithmSeries> series;
  /// MQO cost of the quantum annealer's first read.
  double qa_first_read_cost = 0.0;
  /// Best cost after all reads.
  double qa_final_cost = 0.0;
  /// Best cost any algorithm found (the reference "optimum" for scaling;
  /// equals the true optimum whenever LIN-MQO finished its proof).
  double best_known_cost = 0.0;
  bool optimum_proven = false;
  /// LIN-MQO: time until the proof completed (or the budget, if capped).
  double lin_mqo_proof_ms = 0.0;
  bool lin_mqo_proof_capped = false;
  /// Mapping (logical + physical) preprocessing time.
  double preprocessing_ms = 0.0;
  /// Normalization base for "scaled cost" plots: sum over queries of the
  /// most expensive plan (no-sharing worst case).
  double scale_base = 0.0;
  /// QA per-read modeled time, ms.
  double qa_read_ms = 0.0;
  /// Physical qubits used / logical variables (Figure 6's x-axis ratio).
  int physical_qubits = 0;
  int logical_vars = 0;
};

/// One experiment class.
struct ClassResult {
  ExperimentConfig config;
  int actual_num_queries = 0;
  std::vector<InstanceRun> instances;
};

/// Runs a full class. `graph` is the chip model (typically
/// `DWave2XWithDefects`).
Result<ClassResult> RunExperimentClass(const ExperimentConfig& config,
                                       const chimera::ChimeraGraph& graph);

/// Figure 6's speedup definition for one instance: the time the *best*
/// classical competitor needs to match the QA first-read quality, divided
/// by the QA first-read (modeled) time. Infinite when no classical series
/// matched within its budget; the caller decides how to report that.
double QuantumSpeedup(const InstanceRun& run);

/// Average qubits per logical variable for a class (Figure 6's x-axis).
double QubitsPerVariable(const ClassResult& result);

}  // namespace harness
}  // namespace qmqo

#endif  // QMQO_HARNESS_EXPERIMENT_H_
