#include "harness/experiment.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "baselines/genetic.h"
#include "baselines/hill_climbing.h"
#include "mapping/logical_mapping.h"
#include "solver/mqo_bnb.h"
#include "solver/qubo_bnb.h"
#include "util/executor.h"
#include "util/string_util.h"

namespace qmqo {
namespace harness {
namespace {

double ScaleBase(const mqo::MqoProblem& problem) {
  double base = 0.0;
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    double worst = 0.0;
    for (int k = 0; k < problem.num_plans_of(q); ++k) {
      worst = std::max(worst, problem.plan_cost(problem.first_plan(q) + k));
    }
    base += worst;
  }
  return base;
}

/// Everything one instance produces: the run plus the (possibly clamped)
/// query count of the generated instance.
struct InstanceOutcome {
  InstanceRun run;
  int num_queries = 0;
};

/// Runs instance `instance_id` of a class. Self-contained: all randomness
/// comes from `Rng(config.seed).Fork(instance_id)` — `Fork` depends only on
/// the construction seed, so instances can execute in any order and on any
/// thread without changing a single draw.
Result<InstanceOutcome> RunInstance(const ExperimentConfig& config,
                                    const chimera::ChimeraGraph& graph,
                                    int instance_id) {
  Rng instance_rng =
      Rng(config.seed).Fork(static_cast<uint64_t>(instance_id));
  QMQO_ASSIGN_OR_RETURN(
      PaperInstance instance,
      GeneratePaperInstance(graph, config.workload, &instance_rng));

  InstanceOutcome outcome;
  outcome.num_queries = instance.num_queries;
  InstanceRun& run = outcome.run;
  run.scale_base = ScaleBase(instance.problem);
  run.logical_vars = instance.problem.num_plans();

  // --- Quantum annealer (Algorithm 1 on the simulated device). ---
  {
    QuantumMqoOptions quantum = config.quantum;
    // A caller-supplied harness pool also serves the nested device reads,
    // keeping the whole class on one pool unless the device options name
    // their own.
    if (quantum.device.executor == nullptr) {
      quantum.device.executor = config.executor;
    }
    quantum.device.seed = instance_rng.Next();
    QMQO_ASSIGN_OR_RETURN(
        QuantumMqoResult qa,
        SolveQuantumMqo(instance.problem, instance.embedding, graph,
                        quantum));
    AlgorithmSeries series;
    series.name = "QA";
    series.trajectory = qa.cost_vs_device_time;
    series.device_time_axis = true;
    run.series.push_back(std::move(series));
    run.qa_first_read_cost = qa.first_read_cost;
    run.qa_final_cost = qa.best_cost;
    run.preprocessing_ms = qa.preprocessing_ms;
    run.qa_read_ms = (quantum.device.anneal_time_us +
                      quantum.device.readout_time_us) /
                     1000.0;
    run.physical_qubits = qa.physical_qubits;
  }

  // --- LIN-MQO: exact branch and bound on the native model. ---
  {
    solver::MqoBnbOptions options;
    options.time_limit_ms = config.classical_time_limit_ms;
    if (config.classical_max_nodes > 0) {
      options.max_nodes = config.classical_max_nodes;
    }
    solver::MqoBranchAndBound bnb(options);
    AlgorithmSeries series;
    series.name = "LIN-MQO";
    QMQO_ASSIGN_OR_RETURN(
        solver::MqoBnbResult bnb_result,
        bnb.Solve(instance.problem,
                  [&](double ms, double cost, const mqo::MqoSolution&) {
                    series.trajectory.Record(ms, cost);
                  }));
    run.series.push_back(std::move(series));
    run.optimum_proven = bnb_result.proven_optimal;
    run.lin_mqo_proof_ms = bnb_result.total_time_ms;
    run.lin_mqo_proof_capped = !bnb_result.proven_optimal;
  }

  // --- LIN-QUB: exact branch and bound on the QUBO reformulation. ---
  if (config.run_lin_qub) {
    QMQO_ASSIGN_OR_RETURN(
        mapping::LogicalMapping logical,
        mapping::LogicalMapping::Create(instance.problem));
    solver::QuboBnbOptions options;
    options.time_limit_ms = config.classical_time_limit_ms;
    if (config.classical_max_nodes > 0) {
      options.max_nodes = config.classical_max_nodes;
    }
    solver::QuboBranchAndBound bnb(options);
    AlgorithmSeries series;
    series.name = "LIN-QUB";
    QMQO_ASSIGN_OR_RETURN(
        solver::QuboBnbResult bnb_result,
        bnb.Solve(logical.qubo(), [&](double ms, double energy,
                                      const std::vector<uint8_t>& x) {
          // Report MQO cost, not QUBO energy, so series are comparable.
          (void)energy;
          mqo::MqoSolution solution = logical.RepairedSolution(x);
          series.trajectory.Record(
              ms, mqo::EvaluateCost(instance.problem, solution));
        }));
    (void)bnb_result;
    run.series.push_back(std::move(series));
  }

  // --- CLIMB. ---
  {
    baselines::IteratedHillClimbing climb;
    baselines::OptimizerBudget budget;
    budget.time_limit_ms = config.classical_time_limit_ms;
    budget.max_iterations = config.classical_max_iterations;
    Rng rng = instance_rng.Fork(1001);
    AlgorithmSeries series;
    series.name = "CLIMB";
    QMQO_ASSIGN_OR_RETURN(
        mqo::MqoSolution ignored,
        climb.Optimize(instance.problem, budget, &rng,
                       [&](double ms, double cost, const mqo::MqoSolution&) {
                         series.trajectory.Record(ms, cost);
                       }));
    (void)ignored;
    run.series.push_back(std::move(series));
  }

  // --- GA(population) for each configured size. ---
  for (int population : config.ga_populations) {
    baselines::GeneticOptions options;
    options.population_size = population;
    baselines::GeneticAlgorithm ga(options);
    baselines::OptimizerBudget budget;
    budget.time_limit_ms = config.classical_time_limit_ms;
    budget.max_iterations = config.classical_max_iterations;
    Rng rng = instance_rng.Fork(2000 + static_cast<uint64_t>(population));
    AlgorithmSeries series;
    series.name = ga.name();
    QMQO_ASSIGN_OR_RETURN(
        mqo::MqoSolution ignored,
        ga.Optimize(instance.problem, budget, &rng,
                    [&](double ms, double cost, const mqo::MqoSolution&) {
                      series.trajectory.Record(ms, cost);
                    }));
    (void)ignored;
    run.series.push_back(std::move(series));
  }

  // Best known cost across all series.
  double best = std::numeric_limits<double>::infinity();
  for (const AlgorithmSeries& series : run.series) {
    best = std::min(best, series.trajectory.FinalCost());
  }
  run.best_known_cost = best;
  return outcome;
}

}  // namespace

Result<ClassResult> RunExperimentClass(const ExperimentConfig& config,
                                       const chimera::ChimeraGraph& graph) {
  ClassResult result;
  result.config = config;
  if (config.num_instances <= 0) return result;

  const int workers = std::min(util::ResolveNumThreads(config.num_threads),
                               config.num_instances);
  if (workers == 1) {
    for (int instance_id = 0; instance_id < config.num_instances;
         ++instance_id) {
      QMQO_ASSIGN_OR_RETURN(InstanceOutcome outcome,
                            RunInstance(config, graph, instance_id));
      result.actual_num_queries = outcome.num_queries;
      result.instances.push_back(std::move(outcome.run));
    }
    return result;
  }

  // Fan instances across the pool into per-instance slots; instance order
  // (and therefore the assembled ClassResult) is identical to the serial
  // loop. On error, the first failing instance wins — also matching the
  // serial early-return, up to the later instances having been attempted.
  util::Executor& pool = config.executor != nullptr
                             ? *config.executor
                             : util::Executor::Shared();
  std::vector<Status> statuses(static_cast<size_t>(config.num_instances));
  std::vector<InstanceOutcome> outcomes(
      static_cast<size_t>(config.num_instances));
  pool.ParallelFor(config.num_instances, workers,
                   [&](int begin, int end, int /*chunk*/) {
                     for (int id = begin; id < end; ++id) {
                       Result<InstanceOutcome> outcome =
                           RunInstance(config, graph, id);
                       if (outcome.ok()) {
                         outcomes[static_cast<size_t>(id)] =
                             std::move(outcome).value();
                       } else {
                         statuses[static_cast<size_t>(id)] = outcome.status();
                       }
                     }
                   });
  for (const Status& status : statuses) {
    QMQO_RETURN_IF_ERROR(status);
  }
  for (InstanceOutcome& outcome : outcomes) {
    result.actual_num_queries = outcome.num_queries;
    result.instances.push_back(std::move(outcome.run));
  }
  return result;
}

double QuantumSpeedup(const InstanceRun& run) {
  double qa_first_ms = run.qa_read_ms;
  double classical_match_ms = std::numeric_limits<double>::infinity();
  for (const AlgorithmSeries& series : run.series) {
    if (series.device_time_axis) continue;
    classical_match_ms =
        std::min(classical_match_ms,
                 series.trajectory.TimeToReach(run.qa_first_read_cost));
  }
  return classical_match_ms / qa_first_ms;
}

double QubitsPerVariable(const ClassResult& result) {
  double total_ratio = 0.0;
  int counted = 0;
  for (const InstanceRun& run : result.instances) {
    if (run.logical_vars > 0) {
      total_ratio += static_cast<double>(run.physical_qubits) /
                     static_cast<double>(run.logical_vars);
      ++counted;
    }
  }
  return counted > 0 ? total_ratio / counted : 0.0;
}

}  // namespace harness
}  // namespace qmqo
