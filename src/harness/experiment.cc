#include "harness/experiment.h"

#include <algorithm>
#include <limits>

#include "baselines/genetic.h"
#include "baselines/hill_climbing.h"
#include "mapping/logical_mapping.h"
#include "solver/mqo_bnb.h"
#include "solver/qubo_bnb.h"
#include "util/string_util.h"

namespace qmqo {
namespace harness {
namespace {

double ScaleBase(const mqo::MqoProblem& problem) {
  double base = 0.0;
  for (mqo::QueryId q = 0; q < problem.num_queries(); ++q) {
    double worst = 0.0;
    for (int k = 0; k < problem.num_plans_of(q); ++k) {
      worst = std::max(worst, problem.plan_cost(problem.first_plan(q) + k));
    }
    base += worst;
  }
  return base;
}

}  // namespace

Result<ClassResult> RunExperimentClass(const ExperimentConfig& config,
                                       const chimera::ChimeraGraph& graph) {
  ClassResult result;
  result.config = config;
  Rng master(config.seed);

  for (int instance_id = 0; instance_id < config.num_instances;
       ++instance_id) {
    Rng instance_rng = master.Fork(static_cast<uint64_t>(instance_id));
    QMQO_ASSIGN_OR_RETURN(
        PaperInstance instance,
        GeneratePaperInstance(graph, config.workload, &instance_rng));
    result.actual_num_queries = instance.num_queries;

    InstanceRun run;
    run.scale_base = ScaleBase(instance.problem);
    run.logical_vars = instance.problem.num_plans();

    // --- Quantum annealer (Algorithm 1 on the simulated device). ---
    {
      QuantumMqoOptions quantum = config.quantum;
      quantum.device.seed = instance_rng.Next();
      QMQO_ASSIGN_OR_RETURN(
          QuantumMqoResult qa,
          SolveQuantumMqo(instance.problem, instance.embedding, graph,
                          quantum));
      AlgorithmSeries series;
      series.name = "QA";
      series.trajectory = qa.cost_vs_device_time;
      series.device_time_axis = true;
      run.series.push_back(std::move(series));
      run.qa_first_read_cost = qa.first_read_cost;
      run.qa_final_cost = qa.best_cost;
      run.preprocessing_ms = qa.preprocessing_ms;
      run.qa_read_ms = (quantum.device.anneal_time_us +
                        quantum.device.readout_time_us) /
                       1000.0;
      run.physical_qubits = qa.physical_qubits;
    }

    // --- LIN-MQO: exact branch and bound on the native model. ---
    {
      solver::MqoBnbOptions options;
      options.time_limit_ms = config.classical_time_limit_ms;
      solver::MqoBranchAndBound bnb(options);
      AlgorithmSeries series;
      series.name = "LIN-MQO";
      QMQO_ASSIGN_OR_RETURN(
          solver::MqoBnbResult bnb_result,
          bnb.Solve(instance.problem,
                    [&](double ms, double cost, const mqo::MqoSolution&) {
                      series.trajectory.Record(ms, cost);
                    }));
      run.series.push_back(std::move(series));
      run.optimum_proven = bnb_result.proven_optimal;
      run.lin_mqo_proof_ms = bnb_result.total_time_ms;
      run.lin_mqo_proof_capped = !bnb_result.proven_optimal;
    }

    // --- LIN-QUB: exact branch and bound on the QUBO reformulation. ---
    if (config.run_lin_qub) {
      QMQO_ASSIGN_OR_RETURN(
          mapping::LogicalMapping logical,
          mapping::LogicalMapping::Create(instance.problem));
      solver::QuboBnbOptions options;
      options.time_limit_ms = config.classical_time_limit_ms;
      solver::QuboBranchAndBound bnb(options);
      AlgorithmSeries series;
      series.name = "LIN-QUB";
      QMQO_ASSIGN_OR_RETURN(
          solver::QuboBnbResult bnb_result,
          bnb.Solve(logical.qubo(), [&](double ms, double energy,
                                        const std::vector<uint8_t>& x) {
            // Report MQO cost, not QUBO energy, so series are comparable.
            (void)energy;
            mqo::MqoSolution solution = logical.RepairedSolution(x);
            series.trajectory.Record(
                ms, mqo::EvaluateCost(instance.problem, solution));
          }));
      (void)bnb_result;
      run.series.push_back(std::move(series));
    }

    // --- CLIMB. ---
    {
      baselines::IteratedHillClimbing climb;
      baselines::OptimizerBudget budget;
      budget.time_limit_ms = config.classical_time_limit_ms;
      Rng rng = instance_rng.Fork(1001);
      AlgorithmSeries series;
      series.name = "CLIMB";
      QMQO_ASSIGN_OR_RETURN(
          mqo::MqoSolution ignored,
          climb.Optimize(instance.problem, budget, &rng,
                         [&](double ms, double cost, const mqo::MqoSolution&) {
                           series.trajectory.Record(ms, cost);
                         }));
      (void)ignored;
      run.series.push_back(std::move(series));
    }

    // --- GA(population) for each configured size. ---
    for (int population : config.ga_populations) {
      baselines::GeneticOptions options;
      options.population_size = population;
      baselines::GeneticAlgorithm ga(options);
      baselines::OptimizerBudget budget;
      budget.time_limit_ms = config.classical_time_limit_ms;
      Rng rng = instance_rng.Fork(2000 + static_cast<uint64_t>(population));
      AlgorithmSeries series;
      series.name = ga.name();
      QMQO_ASSIGN_OR_RETURN(
          mqo::MqoSolution ignored,
          ga.Optimize(instance.problem, budget, &rng,
                      [&](double ms, double cost, const mqo::MqoSolution&) {
                        series.trajectory.Record(ms, cost);
                      }));
      (void)ignored;
      run.series.push_back(std::move(series));
    }

    // Best known cost across all series.
    double best = std::numeric_limits<double>::infinity();
    for (const AlgorithmSeries& series : run.series) {
      best = std::min(best, series.trajectory.FinalCost());
    }
    run.best_known_cost = best;
    result.instances.push_back(std::move(run));
  }
  return result;
}

double QuantumSpeedup(const InstanceRun& run) {
  double qa_first_ms = run.qa_read_ms;
  double classical_match_ms = std::numeric_limits<double>::infinity();
  for (const AlgorithmSeries& series : run.series) {
    if (series.device_time_axis) continue;
    classical_match_ms =
        std::min(classical_match_ms,
                 series.trajectory.TimeToReach(run.qa_first_read_cost));
  }
  return classical_match_ms / qa_first_ms;
}

double QubitsPerVariable(const ClassResult& result) {
  double total_ratio = 0.0;
  int counted = 0;
  for (const InstanceRun& run : result.instances) {
    if (run.logical_vars > 0) {
      total_ratio += static_cast<double>(run.physical_qubits) /
                     static_cast<double>(run.logical_vars);
      ++counted;
    }
  }
  return counted > 0 ? total_ratio / counted : 0.0;
}

}  // namespace harness
}  // namespace qmqo
